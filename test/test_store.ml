(* The content-addressed observability store (Obs_store): deterministic
   run-id derivation, add/ls round trips through the append-only index
   ledger, tombstone semantics of rm, retention sweeps (gc by count and
   by mtime-relative age), and the snapshot shard headers the store's
   ingestion contract relies on. *)

let with_temp_dir k =
  let path = Filename.temp_file "cs_store" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm path) (fun () -> k path)

let write_file path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Obs_meta.make defaults git_sha to the enclosing repository's HEAD;
   pin it (or its absence) explicitly so ids are reproducible here. *)
let meta ?git_sha ?seed ?scenario () =
  let m = Obs_meta.make ?seed ?scenario () in
  { m with Obs_meta.git_sha }

let trace_lines m =
  Jsonx.to_string (Obs_meta.to_json m)
  :: List.map
       (fun ev -> Jsonx.to_string (Obs_event.to_json ev))
       Obs_event.
         [
           Run_started { time = 0.0; source = "test"; seed = m.Obs_meta.seed };
           Run_finished { time = 1.0 };
         ]

(* ------------------------------------------------------------------ *)
(* Run ids                                                             *)

let test_run_id_deterministic () =
  let m () = meta ~git_sha:"abc123" ~seed:7L ~scenario:"simulate u" () in
  let id = Obs_store.run_id_of_meta (m ()) in
  (* The acceptance contract: same (sha, seed, scenario), same id. *)
  Alcotest.(check string) "same triple, same id" id
    (Obs_store.run_id_of_meta (m ()));
  Alcotest.(check int) "12 digits" 12 (String.length id);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        (String.contains "0123456789abcdef" c))
    id;
  (* Fields outside the triple must not perturb the id: a re-run with
     more domains is the same run. *)
  Alcotest.(check string) "jobs not part of the identity" id
    (Obs_store.run_id_of_meta { (m ()) with Obs_meta.jobs = Some 8 });
  let differs label m' =
    Alcotest.(check bool) label true (Obs_store.run_id_of_meta m' <> id)
  in
  differs "seed changes the id"
    (meta ~git_sha:"abc123" ~seed:8L ~scenario:"simulate u" ());
  differs "sha changes the id"
    (meta ~git_sha:"abc124" ~seed:7L ~scenario:"simulate u" ());
  differs "scenario changes the id"
    (meta ~git_sha:"abc123" ~seed:7L ~scenario:"simulate g" ());
  (* Absent fields fall back to "-": a bare header still derives a
     stable id. *)
  Alcotest.(check string) "bare header is stable"
    (Obs_store.run_id_of_meta (meta ()))
    (Obs_store.run_id_of_meta (meta ()))

(* ------------------------------------------------------------------ *)
(* add / ls / find                                                     *)

let test_add_and_ls () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "store" in
      let st = ok (Obs_store.open_store ~root ()) in
      let m = meta ~git_sha:"deadbeef" ~seed:7L ~scenario:"sim" () in
      let src = Filename.concat dir "trace.jsonl" in
      write_file src (trace_lines m);
      let r = ok (Obs_store.add st ~kind:Obs_store.Trace src) in
      Alcotest.(check string) "id derived from the embedded header"
        (Obs_store.run_id_of_meta m) r.Obs_store.id;
      Alcotest.(check string) "filed under runs/<id>/"
        (Filename.concat (Filename.concat "runs" r.Obs_store.id)
           "trace.jsonl")
        r.Obs_store.file;
      Alcotest.(check bool) "copy exists" true
        (Sys.file_exists (Obs_store.artifact_path st r));
      Alcotest.(check bool) "provenance surfaced" true
        (r.Obs_store.git_sha = Some "deadbeef"
        && r.Obs_store.seed = Some 7L
        && r.Obs_store.scenario = Some "sim");
      (* A second artifact of the same run files under the same id. *)
      let snap = Filename.concat dir "snap.jsonl" in
      write_file snap [ Jsonx.to_string (Obs_meta.to_json m) ];
      let r2 = ok (Obs_store.add st ~kind:Obs_store.Snapshots snap) in
      Alcotest.(check string) "same run id" r.Obs_store.id r2.Obs_store.id;
      let rows = ok (Obs_store.ls st) in
      Alcotest.(check int) "two live records" 2 (List.length rows);
      Alcotest.(check int) "find by id" 2
        (List.length (ok (Obs_store.find st ~id:r.Obs_store.id)));
      Alcotest.(check int) "find by sha" 2
        (List.length (ok (Obs_store.find_by_sha st ~git_sha:"deadbeef")));
      Alcotest.(check int) "find by unknown sha" 0
        (List.length (ok (Obs_store.find_by_sha st ~git_sha:"cafe")));
      match Obs_store.index_to_json rows with
      | Jsonx.List items ->
          Alcotest.(check int) "wire form lists every record" 2
            (List.length items)
      | _ -> Alcotest.fail "index_to_json is not an array")

let test_readd_supersedes_in_place () =
  with_temp_dir (fun dir ->
      let st =
        ok (Obs_store.open_store ~root:(Filename.concat dir "store") ())
      in
      let ma = meta ~git_sha:"aaaa" ~seed:1L () in
      let mb = meta ~git_sha:"bbbb" ~seed:2L () in
      let src_a = Filename.concat dir "a.jsonl" in
      let src_b = Filename.concat dir "b.jsonl" in
      write_file src_a (trace_lines ma);
      write_file src_b (trace_lines mb);
      let ra = ok (Obs_store.add st ~kind:Obs_store.Trace src_a) in
      let rb = ok (Obs_store.add st ~kind:Obs_store.Trace src_b) in
      (* Refresh run A: the ledger gains a line but the live view still
         shows one trace per run, in first-added order. *)
      write_file src_a (trace_lines ma @ [ "" ]);
      let ra' = ok (Obs_store.add st ~kind:Obs_store.Trace src_a) in
      Alcotest.(check string) "same id on re-add" ra.Obs_store.id
        ra'.Obs_store.id;
      let rows = ok (Obs_store.ls st) in
      Alcotest.(check (list string)) "collapsed, original order"
        [ ra.Obs_store.id; rb.Obs_store.id ]
        (List.map (fun r -> r.Obs_store.id) rows))

let test_headerless_refused () =
  with_temp_dir (fun dir ->
      let st =
        ok (Obs_store.open_store ~root:(Filename.concat dir "store") ())
      in
      let src = Filename.concat dir "naked.jsonl" in
      write_file src
        [
          Jsonx.to_string
            (Obs_event.to_json
               (Obs_event.Run_finished { time = 0.0 }));
        ];
      (match Obs_store.add st ~kind:Obs_store.Trace src with
      | Ok _ -> Alcotest.fail "accepted a headerless artifact"
      | Error msg ->
          Alcotest.(check bool) "error names the missing header" true
            (contains_sub msg "provenance"));
      (* An explicit ?meta override supplies the provenance instead. *)
      let r =
        ok
          (Obs_store.add st
             ~meta:(meta ~git_sha:"feed" ~seed:3L ())
             ~kind:Obs_store.Trace src)
      in
      Alcotest.(check bool) "override filed it" true
        (Sys.file_exists (Obs_store.artifact_path st r));
      match Obs_store.add st ~kind:Obs_store.Trace "no/such/file" with
      | Ok _ -> Alcotest.fail "added a missing file"
      | Error _ -> ())

let test_open_store_rejects_non_directory () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "plain" in
      write_file root [ "not a directory" ];
      match Obs_store.open_store ~root () with
      | Ok _ -> Alcotest.fail "opened a store on a plain file"
      | Error msg ->
          Alcotest.(check bool) "says why" true
            (contains_sub msg "not a directory"))

(* ------------------------------------------------------------------ *)
(* rm / tombstones                                                     *)

let test_rm_tombstones () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "store" in
      let st = ok (Obs_store.open_store ~root ()) in
      let m = meta ~git_sha:"c0ffee" ~seed:5L () in
      let src = Filename.concat dir "t.jsonl" in
      write_file src (trace_lines m);
      let r = ok (Obs_store.add st ~kind:Obs_store.Trace src) in
      let (_ : Obs_store.record) =
        ok (Obs_store.add st ~meta:m ~kind:Obs_store.Snapshots src)
      in
      let id = r.Obs_store.id in
      Alcotest.(check int) "both artifacts deleted" 2
        (ok (Obs_store.rm st ~id));
      Alcotest.(check bool) "artifact gone" false
        (Sys.file_exists (Obs_store.artifact_path st r));
      Alcotest.(check int) "live view empty" 0
        (List.length (ok (Obs_store.ls st)));
      Alcotest.(check int) "rm is idempotent" 0 (ok (Obs_store.rm st ~id));
      (* The tombstone is in the ledger, not in-process state: a fresh
         handle folds to the same empty view. *)
      let st2 = ok (Obs_store.open_store ~root ()) in
      Alcotest.(check int) "tombstone persisted" 0
        (List.length (ok (Obs_store.ls st2)));
      (* A re-add after rm resurrects the run. *)
      let (_ : Obs_store.record) =
        ok (Obs_store.add st ~kind:Obs_store.Trace src)
      in
      Alcotest.(check int) "re-added run is live" 1
        (List.length (ok (Obs_store.ls st))))

let test_corrupt_ledger_is_an_error () =
  with_temp_dir (fun dir ->
      let root = Filename.concat dir "store" in
      let st = ok (Obs_store.open_store ~root ()) in
      let src = Filename.concat dir "t.jsonl" in
      write_file src (trace_lines (meta ~git_sha:"ab" ~seed:1L ()));
      let (_ : Obs_store.record) =
        ok (Obs_store.add st ~kind:Obs_store.Trace src)
      in
      let oc =
        open_out_gen [ Open_append ] 0o644 (Filename.concat root "index.jsonl")
      in
      output_string oc "not json\n";
      close_out oc;
      match Obs_store.ls st with
      | Ok _ -> Alcotest.fail "folded a corrupt ledger"
      | Error msg ->
          Alcotest.(check bool) "error carries file:line" true
            (contains_sub msg "index.jsonl:2"))

(* ------------------------------------------------------------------ *)
(* gc                                                                  *)

let add_run st dir tag seed =
  let src = Filename.concat dir (tag ^ ".jsonl") in
  write_file src (trace_lines (meta ~git_sha:tag ~seed ()));
  ok (Obs_store.add st ~kind:Obs_store.Trace src)

let test_gc_keep () =
  with_temp_dir (fun dir ->
      let st =
        ok (Obs_store.open_store ~root:(Filename.concat dir "store") ())
      in
      let ra = add_run st dir "aa" 1L in
      let rb = add_run st dir "bb" 2L in
      let rc = add_run st dir "cc" 3L in
      Alcotest.(check (list string)) "nothing without criteria" []
        (ok (Obs_store.gc st ()));
      Alcotest.(check (list string)) "keep more than exists" []
        (ok (Obs_store.gc st ~keep:5 ()));
      Alcotest.(check (list string)) "oldest evicted first, newest kept"
        [ ra.Obs_store.id; rb.Obs_store.id ]
        (ok (Obs_store.gc st ~keep:1 ()));
      Alcotest.(check (list string)) "survivor"
        [ rc.Obs_store.id ]
        (List.map
           (fun r -> r.Obs_store.id)
           (ok (Obs_store.ls st))))

let test_gc_age_relative_to_frontier () =
  with_temp_dir (fun dir ->
      let st =
        ok (Obs_store.open_store ~root:(Filename.concat dir "store") ())
      in
      let old_r = add_run st dir "old1" 1L in
      let new_r = add_run st dir "new1" 2L in
      (* Age is measured against the store's newest mtime, not the wall
         clock: backdate the old run 100 s behind the frontier. *)
      let frontier =
        (Unix.stat (Obs_store.artifact_path st new_r)).Unix.st_mtime
      in
      Unix.utimes
        (Obs_store.artifact_path st old_r)
        (frontier -. 100.0) (frontier -. 100.0);
      Alcotest.(check (list string)) "inside the window, nothing removed"
        []
        (ok (Obs_store.gc st ~max_age_s:200.0 ()));
      Alcotest.(check (list string)) "stale run removed"
        [ old_r.Obs_store.id ]
        (ok (Obs_store.gc st ~max_age_s:50.0 ()));
      Alcotest.(check (list string)) "frontier run survives"
        [ new_r.Obs_store.id ]
        (List.map
           (fun r -> r.Obs_store.id)
           (ok (Obs_store.ls st))))

(* ------------------------------------------------------------------ *)
(* Snapshot shard headers (the store's ingestion contract)             *)

let test_snapshot_shard_headers () =
  let reg = Obs_metrics.create () in
  let c = Obs_metrics.counter reg "n" in
  let snap = Obs_snapshot.create ~capacity:2 ~every:1 reg in
  List.iter
    (fun at ->
      Obs_metrics.incr c;
      Obs_snapshot.tick snap ~at)
    [ 1; 2; 3 ];
  Alcotest.(check int) "ring wrapped" 1 (Obs_snapshot.dropped snap);
  let m = meta ~git_sha:"abcd" ~seed:9L ~scenario:"shard" () in
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "snap.jsonl" in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs_snapshot.write_jsonl ~meta:m snap oc);
      (* A wrapped ring re-emits the header at the rotation boundary, so
         splitting the file there yields two self-describing shards. *)
      let lines = String.split_on_char '\n' In_channel.(with_open_bin path input_all) in
      let metas =
        List.length
          (List.filter (fun l -> contains_sub l "\"type\":\"meta\"") lines)
      in
      Alcotest.(check int) "header emitted at start and at the wrap" 2 metas;
      let hdr, entries = ok (Obs_snapshot.load_with_meta path) in
      Alcotest.(check bool) "first header surfaced" true (hdr = Some m);
      Alcotest.(check bool) "entries survive the duplicated header" true
        (entries = Obs_snapshot.entries snap);
      Alcotest.(check bool) "load strips headers" true
        (ok (Obs_snapshot.load path) = entries);
      (* The shard ingests cleanly: the store reads the same header. *)
      let st =
        ok (Obs_store.open_store ~root:(Filename.concat dir "store") ())
      in
      let r = ok (Obs_store.add st ~kind:Obs_store.Snapshots path) in
      Alcotest.(check string) "store derives the shard's id"
        (Obs_store.run_id_of_meta m) r.Obs_store.id);
  (* An unwrapped ring writes exactly one header. *)
  let snap2 = Obs_snapshot.create ~capacity:8 ~every:1 reg in
  Obs_snapshot.tick snap2 ~at:1;
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "snap.jsonl" in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs_snapshot.write_jsonl ~meta:m snap2 oc);
      let lines = String.split_on_char '\n' In_channel.(with_open_bin path input_all) in
      Alcotest.(check int) "single header when nothing was dropped" 1
        (List.length
           (List.filter (fun l -> contains_sub l "\"type\":\"meta\"") lines)))

let () =
  Alcotest.run "store"
    [
      ( "run-id",
        [ Alcotest.test_case "deterministic" `Quick test_run_id_deterministic ]
      );
      ( "add",
        [
          Alcotest.test_case "add and ls" `Quick test_add_and_ls;
          Alcotest.test_case "re-add supersedes in place" `Quick
            test_readd_supersedes_in_place;
          Alcotest.test_case "headerless refused" `Quick
            test_headerless_refused;
          Alcotest.test_case "root must be a directory" `Quick
            test_open_store_rejects_non_directory;
        ] );
      ( "rm",
        [
          Alcotest.test_case "tombstones" `Quick test_rm_tombstones;
          Alcotest.test_case "corrupt ledger" `Quick
            test_corrupt_ledger_is_an_error;
        ] );
      ( "gc",
        [
          Alcotest.test_case "keep newest" `Quick test_gc_keep;
          Alcotest.test_case "age relative to frontier" `Quick
            test_gc_age_relative_to_frontier;
        ] );
      ( "shards",
        [
          Alcotest.test_case "meta header re-emitted on wrap" `Quick
            test_snapshot_shard_headers;
        ] );
    ]
