let feq ?(eps = 1e-9) a b = Alcotest.(check (float eps)) "value" a b

(* --- next_period against the closed forms of §4 ---------------------- *)

let test_uniform_recurrence_is_decrement () =
  (* §4.1 eq. (4.1): for p = 1 - t/L, the recurrence gives exactly
     t_k = t_{k-1} - c. *)
  let lf = Families.uniform ~lifespan:100.0 in
  match Recurrence.next_period lf ~c:1.0 ~prev_period:10.0 ~prev_end:10.0 with
  | Some t -> feq 9.0 t
  | None -> Alcotest.fail "expected a next period"

let test_uniform_recurrence_deep_chain () =
  let lf = Families.uniform ~lifespan:100.0 in
  let t = ref 12.0 and elapsed = ref 12.0 in
  for _ = 1 to 5 do
    match
      Recurrence.next_period lf ~c:1.0 ~prev_period:!t ~prev_end:!elapsed
    with
    | Some next ->
        feq ~eps:1e-9 (!t -. 1.0) next;
        elapsed := !elapsed +. next;
        t := next
    | None -> Alcotest.fail "chain broke early"
  done

let test_geo_dec_recurrence_matches_closed_form () =
  (* §4.2 eq. (4.6): a^{-t_k} = 1 + (c - t_{k-1}) ln a. *)
  let a = exp 0.1 in
  let lf = Families.geometric_decreasing ~a in
  let t_prev = 5.0 in
  (match Recurrence.next_period lf ~c:1.0 ~prev_period:t_prev ~prev_end:12.0 with
  | Some t -> (
      match Closed_forms.geo_dec_next_period ~a ~t_prev ~c:1.0 with
      | Some expected -> feq ~eps:1e-7 expected t
      | None -> Alcotest.fail "closed form should exist")
  | None -> Alcotest.fail "expected a next period");
  (* The recurrence for a^{-t} is translation invariant: same result from a
     different elapsed time. *)
  match Recurrence.next_period lf ~c:1.0 ~prev_period:t_prev ~prev_end:40.0 with
  | Some t2 -> (
      match Recurrence.next_period lf ~c:1.0 ~prev_period:t_prev ~prev_end:12.0 with
      | Some t1 -> feq ~eps:1e-6 t1 t2
      | None -> Alcotest.fail "t1 missing")
  | None -> Alcotest.fail "t2 missing"

let test_geo_inc_recurrence_matches_closed_form () =
  (* §4.3 eq. (4.7): t_{k+1} = log2((t_k - c) ln 2 + 1). *)
  let lf = Families.geometric_increasing ~lifespan:30.0 in
  let t_prev = 5.0 in
  match Recurrence.next_period lf ~c:1.0 ~prev_period:t_prev ~prev_end:10.0 with
  | Some t -> (
      match Closed_forms.geo_inc_next_period_guideline ~t_prev ~c:1.0 with
      | Some expected -> feq ~eps:1e-7 expected t
      | None -> Alcotest.fail "closed form should exist")
  | None -> Alcotest.fail "expected a next period"

let test_polynomial_recurrence_matches_closed_form () =
  let d = 3 in
  let lf = Families.polynomial ~d ~lifespan:50.0 in
  let t_prev = 8.0 and t_end_prev = 20.0 in
  match
    Recurrence.next_period lf ~c:1.0 ~prev_period:t_prev ~prev_end:t_end_prev
  with
  | Some t ->
      feq ~eps:1e-7
        (Closed_forms.poly_next_period ~d ~t_prev ~t_end_prev ~c:1.0)
        t
  | None -> Alcotest.fail "expected a next period"

let test_unproductive_prev_stops () =
  (* prev_period <= c makes rhs >= p(T): no positive solution. *)
  let lf = Families.uniform ~lifespan:100.0 in
  Alcotest.(check bool) "no continuation" true
    (Recurrence.next_period lf ~c:1.0 ~prev_period:0.5 ~prev_end:10.0 = None)

let test_exhausted_support_stops () =
  (* A huge period near the end of life: rhs <= 0. *)
  let lf = Families.uniform ~lifespan:100.0 in
  Alcotest.(check bool) "no continuation" true
    (Recurrence.next_period lf ~c:1.0 ~prev_period:90.0 ~prev_end:95.0 = None)

let test_next_period_validation () =
  let lf = Families.uniform ~lifespan:10.0 in
  (match Recurrence.next_period lf ~c:(-1.0) ~prev_period:1.0 ~prev_end:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative c accepted");
  match Recurrence.next_period lf ~c:1.0 ~prev_period:0.0 ~prev_end:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero prev_period accepted"

(* --- generate -------------------------------------------------------- *)

let test_generate_uniform_structure () =
  (* From the optimal t0, generation must reproduce the arithmetic optimal
     schedule of [3]. *)
  let c = 1.0 and l = 100.0 in
  let lf = Families.uniform ~lifespan:l in
  let exact = Exact.uniform ~c ~lifespan:l in
  let g = Recurrence.generate lf ~c ~t0:exact.Exact.t0 in
  (* The final exact period has length < c and carries no work; whether the
     recurrence emits it depends on roundoff at rhs = 0, so compare the
     common productive prefix. *)
  let n =
    Int.min
      (Schedule.num_periods g.Recurrence.schedule)
      (Schedule.num_periods exact.Exact.schedule)
  in
  Alcotest.(check bool) "long common prefix" true
    (n >= Schedule.num_periods exact.Exact.schedule - 1);
  Alcotest.(check bool) "matches exact schedule" true
    (Schedule.equal ~tol:1e-6
       (Schedule.of_periods (Array.sub (Schedule.periods g.Recurrence.schedule) 0 n))
       (Schedule.of_periods (Array.sub (Schedule.periods exact.Exact.schedule) 0 n)))

let test_generate_geo_dec_equal_periods () =
  (* From t*, all generated periods are equal (the [3] structure). *)
  let a = exp 0.05 and c = 1.0 in
  let lf = Families.geometric_decreasing ~a in
  let t_star = Closed_forms.geo_dec_t_optimal ~a ~c in
  let g = Recurrence.generate lf ~c ~t0:t_star in
  let ps = Schedule.periods g.Recurrence.schedule in
  Alcotest.(check bool) "many periods" true (Array.length ps > 10);
  (* t* is a repelling fixed point of the recurrence (multiplier a^{t*}),
     so roundoff drift is amplified exponentially; the early periods must
     sit on t*, the far tail may wander. *)
  Array.iteri (fun i t -> if i < 20 then feq ~eps:1e-6 t_star t) ps

let test_generate_stops_with_reason () =
  let lf = Families.uniform ~lifespan:100.0 in
  let g = Recurrence.generate lf ~c:1.0 ~t0:13.0 in
  Alcotest.(check bool) "terminates" true
    (match g.Recurrence.stop with
    | Recurrence.Exhausted_support | Recurrence.Unproductive
    | Recurrence.Tail_negligible | Recurrence.Period_cap ->
        true)

let test_generate_period_cap () =
  let lf = Families.geometric_decreasing ~a:(exp 0.001) in
  let g = Recurrence.generate ~max_periods:5 lf ~c:0.1 ~t0:50.0 in
  Alcotest.(check int) "capped" 5 (Schedule.num_periods g.Recurrence.schedule);
  Alcotest.(check bool) "cap reason" true
    (g.Recurrence.stop = Recurrence.Period_cap)

let test_generate_validation () =
  let lf = Families.uniform ~lifespan:10.0 in
  match Recurrence.generate lf ~c:1.0 ~t0:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "t0 = 0 accepted"

let test_greedy_tail_improves_or_matches () =
  let lf = Families.uniform ~lifespan:100.0 in
  let c = 1.0 in
  (* A deliberately bad t0 leaves lifespan unused; the greedy tail must not
     hurt and usually helps. *)
  let faithful = Recurrence.generate ~finish:Recurrence.Faithful lf ~c ~t0:30.0 in
  let greedy = Recurrence.generate ~finish:Recurrence.Greedy_tail lf ~c ~t0:30.0 in
  let ef = Schedule.expected_work ~c lf faithful.Recurrence.schedule in
  let eg = Schedule.expected_work ~c lf greedy.Recurrence.schedule in
  Alcotest.(check bool) "greedy tail no worse" true (eg >= ef -. 1e-12)

(* --- residuals ------------------------------------------------------- *)

let test_residuals_of_generated_are_zero () =
  let lf = Families.geometric_increasing ~lifespan:30.0 in
  let g = Recurrence.generate lf ~c:1.0 ~t0:20.0 in
  let res = Recurrence.residuals lf ~c:1.0 g.Recurrence.schedule in
  Array.iter (fun r -> feq ~eps:1e-8 0.0 r) res

let test_residuals_detect_violation () =
  let lf = Families.uniform ~lifespan:100.0 in
  (* Equal periods violate the decrement-by-c recurrence. *)
  let s = Schedule.of_list [ 10.0; 10.0; 10.0 ] in
  let res = Recurrence.residuals lf ~c:1.0 s in
  Alcotest.(check bool) "nonzero residual" true
    (Array.exists (fun r -> Float.abs r > 1e-6) res)

let prop_generated_schedules_satisfy_recurrence =
  QCheck.Test.make
    ~name:"generated schedules satisfy eq. 3.6 (zero residuals)" ~count:100
    QCheck.(pair (float_range 5.0 30.0) (float_range 0.2 2.0))
    (fun (t0, c) ->
      let lf = Families.uniform ~lifespan:120.0 in
      let g = Recurrence.generate lf ~c ~t0 in
      let res = Recurrence.residuals lf ~c g.Recurrence.schedule in
      Array.for_all (fun r -> Float.abs r < 1e-7) res)

let prop_uniform_periods_decrease_by_c =
  QCheck.Test.make ~name:"uniform-risk periods decrease by exactly c"
    ~count:100
    QCheck.(pair (float_range 8.0 25.0) (float_range 0.3 1.5))
    (fun (t0, c) ->
      let lf = Families.uniform ~lifespan:150.0 in
      let g = Recurrence.generate lf ~c ~t0 in
      let ps = Schedule.periods g.Recurrence.schedule in
      let ok = ref true in
      for i = 0 to Array.length ps - 2 do
        if Float.abs (ps.(i + 1) -. (ps.(i) -. c)) > 1e-6 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "recurrence"
    [
      ( "next-period",
        [
          Alcotest.test_case "uniform = decrement (4.1)" `Quick
            test_uniform_recurrence_is_decrement;
          Alcotest.test_case "uniform chain" `Quick
            test_uniform_recurrence_deep_chain;
          Alcotest.test_case "geo-dec matches (4.6)" `Quick
            test_geo_dec_recurrence_matches_closed_form;
          Alcotest.test_case "geo-inc matches (4.7)" `Quick
            test_geo_inc_recurrence_matches_closed_form;
          Alcotest.test_case "polynomial closed form" `Quick
            test_polynomial_recurrence_matches_closed_form;
          Alcotest.test_case "unproductive stops" `Quick
            test_unproductive_prev_stops;
          Alcotest.test_case "exhausted support stops" `Quick
            test_exhausted_support_stops;
          Alcotest.test_case "validation" `Quick test_next_period_validation;
        ] );
      ( "generate",
        [
          Alcotest.test_case "uniform reproduces exact" `Quick
            test_generate_uniform_structure;
          Alcotest.test_case "geo-dec equal periods" `Quick
            test_generate_geo_dec_equal_periods;
          Alcotest.test_case "stop reason" `Quick test_generate_stops_with_reason;
          Alcotest.test_case "period cap" `Quick test_generate_period_cap;
          Alcotest.test_case "validation" `Quick test_generate_validation;
          Alcotest.test_case "greedy tail no worse" `Quick
            test_greedy_tail_improves_or_matches;
        ] );
      ( "residuals",
        [
          Alcotest.test_case "generated residuals zero" `Quick
            test_residuals_of_generated_are_zero;
          Alcotest.test_case "violations detected" `Quick
            test_residuals_detect_violation;
          QCheck_alcotest.to_alcotest prop_generated_schedules_satisfy_recurrence;
          QCheck_alcotest.to_alcotest prop_uniform_periods_decrease_by_c;
        ] );
    ]
