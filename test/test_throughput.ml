let c = 1.0
let lf = Families.uniform ~lifespan:100.0

let test_analytic_fields_consistent () =
  let t = Throughput.of_guideline lf ~c ~presence_mean:50.0 in
  Alcotest.(check (float 1e-12)) "rate = work/cycle"
    (t.Throughput.work_per_cycle /. t.Throughput.cycle_length)
    t.Throughput.rate;
  (* Uniform L=100: mean absence 50; cycle = 50 + 50. *)
  Alcotest.(check (float 1e-6)) "cycle length" 100.0 t.Throughput.cycle_length;
  Alcotest.(check bool) "utilisation in (0,1)" true
    (t.Throughput.utilisation > 0.0 && t.Throughput.utilisation < 1.0)

let test_analytic_validation () =
  let s = Schedule.of_list [ 1.0 ] in
  match Throughput.analytic lf ~c ~presence_mean:0.0 s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "presence 0 accepted"

let test_guideline_rate_beats_bad_schedule () =
  let bad = Schedule.of_list [ 99.9 ] in
  let t_bad = Throughput.analytic lf ~c ~presence_mean:50.0 bad in
  let t_good = Throughput.of_guideline lf ~c ~presence_mean:50.0 in
  Alcotest.(check bool) "guideline higher rate" true
    (t_good.Throughput.rate > t_bad.Throughput.rate)

let test_farm_matches_renewal_theory () =
  (* One workstation, long run: measured rate ~ analytic rate. *)
  let presence_mean = 40.0 in
  let analytic = Throughput.of_guideline lf ~c ~presence_mean in
  let cfg =
    {
      Farm.c;
      total_work = 20_000.0;
      workstations = [ { Farm.ws_life = lf; ws_presence_mean = presence_mean } ];
      policy = Farm.guideline_policy;
      max_time = 1e7;
    }
  in
  let rates =
    List.map
      (fun seed -> Throughput.measured_rate (Farm.run cfg ~seed))
      [ 1L; 2L; 3L ]
  in
  let mean = List.fold_left ( +. ) 0.0 rates /. 3.0 in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f within 10%% of analytic %.4f" mean
       analytic.Throughput.rate)
    true
    (Float.abs (mean -. analytic.Throughput.rate)
    < 0.10 *. analytic.Throughput.rate)

let test_fleet_scales_rate () =
  (* n identical stations: total rate ~ n * single rate. *)
  let presence_mean = 40.0 in
  let ws = { Farm.ws_life = lf; ws_presence_mean = presence_mean } in
  let run n =
    let cfg =
      {
        Farm.c;
        total_work = 10_000.0;
        workstations = List.init n (fun _ -> ws);
        policy = Farm.guideline_policy;
        max_time = 1e7;
      }
    in
    Throughput.measured_rate (Farm.run cfg ~seed:5L)
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 stations %.3f ~ 4x one station %.3f" r4 (4.0 *. r1))
    true
    (r4 > 3.0 *. r1 && r4 < 5.0 *. r1)

let test_measured_rate_zero_guard () =
  (* Synthetic degenerate report: zero makespan. *)
  let r =
    {
      Farm.finished = false;
      makespan = 0.0;
      pool_remaining = 1.0;
      total_done = 0.0;
      total_lost = 0.0;
      total_overhead = 0.0;
      per_workstation = [];
    }
  in
  Alcotest.(check (float 0.0)) "zero" 0.0 (Throughput.measured_rate r)

let prop_rate_monotone_in_presence =
  QCheck.Test.make ~name:"rate decreases with longer owner presence"
    ~count:40
    QCheck.(pair (float_range 10.0 100.0) (float_range 10.0 100.0))
    (fun (p1, dp) ->
      let t1 = Throughput.of_guideline lf ~c ~presence_mean:p1 in
      let t2 = Throughput.of_guideline lf ~c ~presence_mean:(p1 +. dp) in
      t2.Throughput.rate <= t1.Throughput.rate +. 1e-12)

let () =
  Alcotest.run "throughput"
    [
      ( "throughput",
        [
          Alcotest.test_case "fields consistent" `Quick
            test_analytic_fields_consistent;
          Alcotest.test_case "validation" `Quick test_analytic_validation;
          Alcotest.test_case "guideline beats bad schedule" `Quick
            test_guideline_rate_beats_bad_schedule;
          Alcotest.test_case "farm matches renewal theory" `Quick
            test_farm_matches_renewal_theory;
          Alcotest.test_case "fleet scales rate" `Quick test_fleet_scales_rate;
          Alcotest.test_case "zero makespan guard" `Quick
            test_measured_rate_zero_guard;
          QCheck_alcotest.to_alcotest prop_rate_monotone_in_presence;
        ] );
    ]
