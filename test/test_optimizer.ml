let test_matches_exact_uniform () =
  let c = 1.0 and l = 60.0 in
  let lf = Families.uniform ~lifespan:l in
  let o = Optimizer.optimal_schedule lf ~c in
  let exact = Exact.uniform ~c ~lifespan:l in
  Alcotest.(check bool) "within 0.5% of exact" true
    (o.Optimizer.expected_work >= 0.995 *. exact.Exact.expected_work)

let test_single_period_life_function () =
  (* Tiny lifespan relative to c: only one short period makes sense. *)
  let lf = Families.uniform ~lifespan:4.0 in
  let o = Optimizer.optimal_schedule lf ~c:1.0 in
  Alcotest.(check bool) "few periods" true (o.Optimizer.m <= 3);
  Alcotest.(check bool) "positive work" true (o.Optimizer.expected_work > 0.0)

let test_resulting_schedule_matches_reported_e () =
  let lf = Families.polynomial ~d:2 ~lifespan:50.0 in
  let o = Optimizer.optimal_schedule lf ~c:1.0 in
  Alcotest.(check (float 1e-9)) "E consistent" o.Optimizer.expected_work
    (Schedule.expected_work ~c:1.0 lf o.Optimizer.schedule)

let test_schedule_is_productive () =
  let lf = Families.geometric_increasing ~lifespan:25.0 in
  let o = Optimizer.optimal_schedule lf ~c:1.0 in
  Alcotest.(check bool) "productive normal form" true
    (Schedule.is_productive ~c:1.0 o.Optimizer.schedule)

let test_m_max_cap_respected () =
  let lf = Families.uniform ~lifespan:100.0 in
  let o = Optimizer.optimal_schedule ~m_max:3 lf ~c:1.0 in
  Alcotest.(check bool) "m <= 3" true (o.Optimizer.m <= 3)

let test_validation () =
  let lf = Families.uniform ~lifespan:10.0 in
  (match Optimizer.optimal_schedule lf ~c:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = 0 accepted");
  match Optimizer.optimal_schedule lf ~c:20.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c >= horizon accepted"

let test_expected_work_of_vector_semantics () =
  let lf = Families.uniform ~lifespan:10.0 in
  (* Vector with a nonpositive entry: consumes no time, contributes no
     work (it is clamped to 0). *)
  let e1 = Optimizer.expected_work_of_vector lf ~c:1.0 [| 4.0; -1.0; 3.0 |] in
  let e2 = Optimizer.expected_work_of_vector lf ~c:1.0 [| 4.0; 3.0 |] in
  Alcotest.(check (float 1e-12)) "clamped entry is neutral" e2 e1

let test_expected_work_of_vector_matches_schedule () =
  let lf = Families.uniform ~lifespan:10.0 in
  let ts = [| 4.0; 3.0; 1.5 |] in
  Alcotest.(check (float 1e-12)) "vector E = schedule E"
    (Schedule.expected_work ~c:1.0 lf (Schedule.of_periods ts))
    (Optimizer.expected_work_of_vector lf ~c:1.0 ts)

let test_optimum_satisfies_recurrence () =
  (* Theorem 3.1: the independently-found optimum obeys eq. 3.6. *)
  let lf = Families.geometric_increasing ~lifespan:30.0 in
  let o = Optimizer.optimal_schedule lf ~c:1.0 in
  let res = Recurrence.residuals lf ~c:1.0 o.Optimizer.schedule in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "residual small" true (Float.abs r < 1e-3))
    res

let prop_optimizer_never_below_guideline_minus_noise =
  QCheck.Test.make
    ~name:"optimizer E >= guideline E - small noise (it searches a superset)"
    ~count:6
    QCheck.(pair (float_range 0.5 2.0) (float_range 20.0 80.0))
    (fun (c, l) ->
      let lf = Families.polynomial ~d:2 ~lifespan:l in
      let g = Guideline.plan lf ~c in
      let o = Optimizer.optimal_schedule lf ~c in
      o.Optimizer.expected_work >= (0.999 *. g.Guideline.expected_work) -. 1e-9)

let () =
  Alcotest.run "optimizer"
    [
      ( "optimizer",
        [
          Alcotest.test_case "matches exact uniform" `Quick
            test_matches_exact_uniform;
          Alcotest.test_case "tiny lifespan" `Quick
            test_single_period_life_function;
          Alcotest.test_case "reported E consistent" `Quick
            test_resulting_schedule_matches_reported_e;
          Alcotest.test_case "productive result" `Quick
            test_schedule_is_productive;
          Alcotest.test_case "m_max cap" `Quick test_m_max_cap_respected;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "vector semantics" `Quick
            test_expected_work_of_vector_semantics;
          Alcotest.test_case "vector matches schedule" `Quick
            test_expected_work_of_vector_matches_schedule;
          Alcotest.test_case "optimum satisfies eq 3.6" `Quick
            test_optimum_satisfies_recurrence;
          QCheck_alcotest.to_alcotest
            prop_optimizer_never_below_guideline_minus_noise;
        ] );
    ]
