let feq ?(eps = 1e-9) a b = Alcotest.(check (float eps)) "value" a b

(* --- §4.1 polynomial / uniform ---------------------------------------- *)

let test_poly_next_period_d1_is_decrement () =
  feq 7.0
    (Closed_forms.poly_next_period ~d:1 ~t_prev:8.0 ~t_end_prev:20.0 ~c:1.0)

let test_poly_next_period_formula () =
  (* d=2, t_prev=8, T=20, c=1: ratio = 1 + 2*7/20 = 1.7;
     t = (sqrt(1.7) - 1) * 20. *)
  feq ~eps:1e-12
    ((sqrt 1.7 -. 1.0) *. 20.0)
    (Closed_forms.poly_next_period ~d:2 ~t_prev:8.0 ~t_end_prev:20.0 ~c:1.0)

let test_poly_next_period_validation () =
  (match Closed_forms.poly_next_period ~d:0 ~t_prev:1.0 ~t_end_prev:1.0 ~c:0.1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "d = 0 accepted");
  match Closed_forms.poly_next_period ~d:1 ~t_prev:1.0 ~t_end_prev:0.0 ~c:0.1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "T = 0 accepted"

let test_poly_t0_bounds_scaling () =
  (* (c/d)^{1/(d+1)} L^{d/(d+1)} for c=1, d=2, L=1000: (1/2)^{1/3} * 100. *)
  feq ~eps:1e-9
    (Float.pow 0.5 (1.0 /. 3.0) *. 100.0)
    (Closed_forms.poly_t0_lower ~d:2 ~c:1.0 ~lifespan:1000.0);
  feq ~eps:1e-9
    ((2.0 *. Float.pow 0.5 (1.0 /. 3.0) *. 100.0) +. 1.0)
    (Closed_forms.poly_t0_upper ~d:2 ~c:1.0 ~lifespan:1000.0)

let test_uniform_t0_forms () =
  feq 10.0 (Closed_forms.uniform_t0_lower ~c:1.0 ~lifespan:100.0);
  feq 21.0 (Closed_forms.uniform_t0_upper ~c:1.0 ~lifespan:100.0);
  feq (sqrt 200.0) (Closed_forms.uniform_t0_optimal ~c:1.0 ~lifespan:100.0)

let test_uniform_optimal_m () =
  (* floor(sqrt(200.25) + 0.5) = floor(14.65) = 14 *)
  Alcotest.(check int) "m" 14
    (Closed_forms.uniform_optimal_m ~c:1.0 ~lifespan:100.0)

let test_uniform_bounds_bracket_optimal () =
  (* Paper's own comparison (4.4) vs (4.5): sqrt(cL) <= sqrt(2cL) <=
     2 sqrt(cL) + 1, for all positive c, L. *)
  List.iter
    (fun (c, l) ->
      let lo = Closed_forms.uniform_t0_lower ~c ~lifespan:l in
      let opt = Closed_forms.uniform_t0_optimal ~c ~lifespan:l in
      let hi = Closed_forms.uniform_t0_upper ~c ~lifespan:l in
      Alcotest.(check bool) "bracketed" true (lo <= opt && opt <= hi))
    [ (0.1, 10.0); (1.0, 100.0); (5.0, 1000.0); (0.01, 50.0) ]

(* --- §4.2 geometric-decreasing ----------------------------------------- *)

let test_geo_dec_next_period_fixpoint () =
  (* The optimal equal period t* is the recurrence's fixed point:
     applying (4.6) to t* returns t*. *)
  let a = exp 0.07 and c = 1.0 in
  let t_star = Closed_forms.geo_dec_t_optimal ~a ~c in
  match Closed_forms.geo_dec_next_period ~a ~t_prev:t_star ~c with
  | Some t -> feq ~eps:1e-9 t_star t
  | None -> Alcotest.fail "fixed point must exist"

let test_geo_dec_next_period_domain () =
  (* t_prev >= c + 1/ln a makes the rhs nonpositive: None. *)
  let a = exp 0.1 and c = 1.0 in
  let too_big = c +. (1.0 /. log a) +. 0.5 in
  Alcotest.(check bool) "no solution" true
    (Closed_forms.geo_dec_next_period ~a ~t_prev:too_big ~c = None)

let test_geo_dec_t_optimal_satisfies_equation () =
  (* t* + a^{-t*}/ln a = c + 1/ln a (the [3] optimality equation). *)
  List.iter
    (fun (a, c) ->
      let t = Closed_forms.geo_dec_t_optimal ~a ~c in
      let lna = log a in
      feq ~eps:1e-9
        (c +. (1.0 /. lna))
        (t +. (Float.pow a (-.t) /. lna)))
    [ (exp 0.05, 1.0); (exp 0.5, 0.3); (2.0, 1.0); (10.0, 0.1) ]

let test_geo_dec_t_optimal_positive_root () =
  (* We need the positive root: t* > c always (some work possible). *)
  List.iter
    (fun (a, c) ->
      let t = Closed_forms.geo_dec_t_optimal ~a ~c in
      Alcotest.(check bool) "t* > c" true (t > c))
    [ (exp 0.05, 1.0); (2.0, 2.0); (1.2, 0.5) ]

let test_geo_dec_bounds_bracket_optimal () =
  (* Paper §4.2: lower <= t* <= upper = c + 1/ln a, with the upper close. *)
  List.iter
    (fun (a, c) ->
      let t = Closed_forms.geo_dec_t_optimal ~a ~c in
      let lo = Closed_forms.geo_dec_t0_lower ~a ~c in
      let hi = Closed_forms.geo_dec_t0_upper ~a ~c in
      Alcotest.(check bool)
        (Printf.sprintf "a=%g c=%g: %g <= %g <= %g" a c lo t hi)
        true
        (lo <= t +. 1e-9 && t <= hi +. 1e-9))
    [ (exp 0.05, 1.0); (exp 0.2, 0.5); (2.0, 1.0); (5.0, 2.0) ]

let test_geo_dec_upper_tight_for_large_risk () =
  (* "Note how close our guidelines' upper bound is to the optimal value":
     as c*ln(a) grows, the relative gap (upper - t_opt)/t_opt shrinks. *)
  let gap a c =
    let t = Closed_forms.geo_dec_t_optimal ~a ~c in
    (Closed_forms.geo_dec_t0_upper ~a ~c -. t) /. t
  in
  let small = gap (exp 0.05) 1.0 in
  let large = gap (exp 2.0) 2.0 in
  Alcotest.(check bool) "relative gap shrinks" true (large < small);
  Alcotest.(check bool) "tight in the high-risk regime" true (large < 0.02)

(* --- §4.3 geometric-increasing ----------------------------------------- *)

let test_geo_inc_guideline_recurrence () =
  (* t' = log2((t - c) ln 2 + 1), t = 5, c = 1. *)
  feq ~eps:1e-12
    (Special.log2 ((4.0 *. log 2.0) +. 1.0))
    (match Closed_forms.geo_inc_next_period_guideline ~t_prev:5.0 ~c:1.0 with
    | Some t -> t
    | None -> Float.nan)

let test_geo_inc_optimal_recurrence () =
  (* t' = log2(t - c + 2), t = 5, c = 1 -> log2 6. *)
  feq ~eps:1e-12
    (Special.log2 6.0)
    (match Closed_forms.geo_inc_next_period_optimal ~t_prev:5.0 ~c:1.0 with
    | Some t -> t
    | None -> Float.nan)

let test_geo_inc_recurrences_stop () =
  Alcotest.(check bool) "guideline stops" true
    (Closed_forms.geo_inc_next_period_guideline ~t_prev:0.5 ~c:1.0 = None);
  Alcotest.(check bool) "optimal stops" true
    (Closed_forms.geo_inc_next_period_optimal ~t_prev:0.5 ~c:2.0 = None)

let test_geo_inc_t0_estimate_scaling () =
  (* t0 ~ L/log2(L)^2: doubling L in the large-L regime scales t0 by
     roughly 2 (log factor moves slowly). *)
  let e1 = Closed_forms.geo_inc_t0_estimate ~lifespan:1024.0 in
  feq ~eps:1e-9 (1024.0 /. 100.0) e1;
  let e2 = Closed_forms.geo_inc_t0_estimate ~lifespan:2048.0 in
  Alcotest.(check bool) "roughly doubles" true (e2 /. e1 > 1.6 && e2 /. e1 < 2.0)

let test_geo_inc_t0_estimate_validation () =
  match Closed_forms.geo_inc_t0_estimate ~lifespan:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "L = 1 accepted"

let prop_lambert_t_optimal_matches_bisection =
  (* Independent check of the Lambert-W closed form against brute force. *)
  QCheck.Test.make ~name:"geo-dec t* (Lambert W) matches direct bisection"
    ~count:100
    QCheck.(pair (float_range 1.05 20.0) (float_range 0.05 5.0))
    (fun (a, c) ->
      let lna = log a in
      let f t = t +. (Float.pow a (-.t) /. lna) -. c -. (1.0 /. lna) in
      (* positive root lies in (c, c + 1/lna] *)
      let hi = c +. (1.0 /. lna) in
      let r = Rootfind.bisect f ~lo:(c +. 1e-12) ~hi in
      Float.abs (Closed_forms.geo_dec_t_optimal ~a ~c -. r.Rootfind.root)
      < 1e-6)

let () =
  Alcotest.run "closed_forms"
    [
      ( "polynomial-4.1",
        [
          Alcotest.test_case "d=1 decrement" `Quick
            test_poly_next_period_d1_is_decrement;
          Alcotest.test_case "d=2 formula" `Quick test_poly_next_period_formula;
          Alcotest.test_case "validation" `Quick
            test_poly_next_period_validation;
          Alcotest.test_case "t0 bound scaling" `Quick
            test_poly_t0_bounds_scaling;
          Alcotest.test_case "uniform t0 forms" `Quick test_uniform_t0_forms;
          Alcotest.test_case "uniform optimal m" `Quick test_uniform_optimal_m;
          Alcotest.test_case "bounds bracket optimal" `Quick
            test_uniform_bounds_bracket_optimal;
        ] );
      ( "geometric-decreasing-4.2",
        [
          Alcotest.test_case "recurrence fixed point" `Quick
            test_geo_dec_next_period_fixpoint;
          Alcotest.test_case "recurrence domain" `Quick
            test_geo_dec_next_period_domain;
          Alcotest.test_case "t* equation" `Quick
            test_geo_dec_t_optimal_satisfies_equation;
          Alcotest.test_case "t* > c" `Quick test_geo_dec_t_optimal_positive_root;
          Alcotest.test_case "bounds bracket t*" `Quick
            test_geo_dec_bounds_bracket_optimal;
          Alcotest.test_case "upper tight at high risk" `Quick
            test_geo_dec_upper_tight_for_large_risk;
          QCheck_alcotest.to_alcotest prop_lambert_t_optimal_matches_bisection;
        ] );
      ( "geometric-increasing-4.3",
        [
          Alcotest.test_case "guideline recurrence" `Quick
            test_geo_inc_guideline_recurrence;
          Alcotest.test_case "optimal recurrence" `Quick
            test_geo_inc_optimal_recurrence;
          Alcotest.test_case "recurrences stop" `Quick
            test_geo_inc_recurrences_stop;
          Alcotest.test_case "t0 estimate scaling" `Quick
            test_geo_inc_t0_estimate_scaling;
          Alcotest.test_case "t0 estimate validation" `Quick
            test_geo_inc_t0_estimate_validation;
        ] );
    ]
