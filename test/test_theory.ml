let c = 1.0

let check_pass name (chk : Theory.check) =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s (%s)" name chk.Theory.name chk.Theory.detail)
    true chk.Theory.holds

let check_fail name (chk : Theory.check) =
  Alcotest.(check bool)
    (Printf.sprintf "%s should fail: %s" name chk.Theory.name)
    false chk.Theory.holds

let test_exact_uniform_passes_all () =
  let lf = Families.uniform ~lifespan:100.0 in
  let exact = Exact.uniform ~c ~lifespan:100.0 in
  List.iter (check_pass "uniform exact") (Theory.full_report lf ~c exact.Exact.schedule)

let test_guideline_geo_inc_passes_all () =
  let lf = Families.geometric_increasing ~lifespan:30.0 in
  let g = Guideline.plan lf ~c in
  List.iter (check_pass "geo-inc guideline")
    (Theory.full_report lf ~c g.Guideline.schedule)

let test_guideline_geo_dec_passes_all () =
  let lf = Families.geometric_decreasing ~a:(exp 0.05) in
  let g = Guideline.plan lf ~c in
  List.iter (check_pass "geo-dec guideline")
    (Theory.full_report lf ~c g.Guideline.schedule)

let test_decrement_detects_violation () =
  (* Increasing internal periods on a concave function violate Thm 5.2. *)
  let lf = Families.polynomial ~d:2 ~lifespan:100.0 in
  let s = Schedule.of_list [ 5.0; 10.0; 15.0; 3.0 ] in
  check_fail "increasing periods" (Theory.decrement_check lf ~c s)

let test_decrement_convex_direction () =
  (* For convex p, periods must NOT shrink faster than c. *)
  let lf = Families.geometric_decreasing ~a:(exp 0.1) in
  let bad = Schedule.of_list [ 20.0; 10.0; 5.0; 4.0 ] in
  check_fail "fast-shrinking on convex" (Theory.decrement_check lf ~c bad);
  let good = Schedule.of_list [ 11.0; 11.0; 11.0; 11.0 ] in
  check_pass "equal periods on convex" (Theory.decrement_check lf ~c good)

let test_decrement_vacuous_for_unknown () =
  let lf =
    Life_function.make ~name:"opaque" ~support:(Life_function.Bounded 50.0)
      (fun t -> 1.0 -. (t /. 50.0))
  in
  let s = Schedule.of_list [ 5.0; 10.0; 2.0 ] in
  check_pass "unknown shape vacuous" (Theory.decrement_check lf ~c s)

let test_period_count_detects_violation () =
  let lf = Families.uniform ~lifespan:20.0 in
  (* Cor 5.3 bound for L=20, c=1 is ceil(sqrt 40.25 + .5) = 7; use 12. *)
  let s = Schedule.of_periods (Array.make 12 1.6) in
  check_fail "too many periods" (Theory.period_count_check lf ~c s)

let test_t0_bounds_detects_violation () =
  let lf = Families.uniform ~lifespan:100.0 in
  (* t0 = 70 is far above the Thm 3.3 bracket (~19). *)
  let s = Schedule.of_list [ 70.0; 5.0 ] in
  check_fail "t0 too large" (Theory.t0_bounds_check lf ~c s)

let test_recurrence_check_detects_violation () =
  let lf = Families.uniform ~lifespan:100.0 in
  let s = Schedule.of_list [ 10.0; 10.0 ] in
  check_fail "equal periods violate eq 3.6" (Theory.recurrence_check lf ~c s)

let test_local_optimality_detects_violation () =
  let lf = Families.uniform ~lifespan:100.0 in
  let s = Schedule.of_list [ 30.0; 30.0; 30.0 ] in
  check_fail "perturbable schedule" (Theory.local_optimality_check lf ~c s)

let test_full_report_covers_five_checks () =
  let lf = Families.uniform ~lifespan:100.0 in
  let g = Guideline.plan lf ~c in
  Alcotest.(check int) "five checks" 5
    (List.length (Theory.full_report lf ~c g.Guideline.schedule))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_pp_check_output () =
  let chk = { Theory.name = "x"; holds = true; detail = "ok" } in
  let s = Format.asprintf "%a" Theory.pp_check chk in
  Alcotest.(check bool) "mentions PASS" true (contains s "PASS");
  let bad = { Theory.name = "y"; holds = false; detail = "broken" } in
  let s' = Format.asprintf "%a" Theory.pp_check bad in
  Alcotest.(check bool) "mentions FAIL" true (contains s' "FAIL")

let prop_guideline_schedules_pass_structure_checks =
  QCheck.Test.make
    ~name:"guideline schedules pass decrement+recurrence checks" ~count:20
    QCheck.(pair (float_range 0.5 1.5) (float_range 40.0 150.0))
    (fun (c, l) ->
      let lf = Families.polynomial ~d:2 ~lifespan:l in
      let g = Guideline.plan lf ~c in
      (Theory.decrement_check lf ~c g.Guideline.schedule).Theory.holds
      && (Theory.recurrence_check lf ~c g.Guideline.schedule).Theory.holds)

let () =
  Alcotest.run "theory"
    [
      ( "pass-cases",
        [
          Alcotest.test_case "exact uniform all pass" `Quick
            test_exact_uniform_passes_all;
          Alcotest.test_case "guideline geo-inc all pass" `Quick
            test_guideline_geo_inc_passes_all;
          Alcotest.test_case "guideline geo-dec all pass" `Quick
            test_guideline_geo_dec_passes_all;
          Alcotest.test_case "five checks in report" `Quick
            test_full_report_covers_five_checks;
          QCheck_alcotest.to_alcotest
            prop_guideline_schedules_pass_structure_checks;
        ] );
      ( "fail-cases",
        [
          Alcotest.test_case "decrement violation" `Quick
            test_decrement_detects_violation;
          Alcotest.test_case "convex direction" `Quick
            test_decrement_convex_direction;
          Alcotest.test_case "unknown shape vacuous" `Quick
            test_decrement_vacuous_for_unknown;
          Alcotest.test_case "period count violation" `Quick
            test_period_count_detects_violation;
          Alcotest.test_case "t0 bounds violation" `Quick
            test_t0_bounds_detects_violation;
          Alcotest.test_case "recurrence violation" `Quick
            test_recurrence_check_detects_violation;
          Alcotest.test_case "local optimality violation" `Quick
            test_local_optimality_detects_violation;
          Alcotest.test_case "pp output" `Quick test_pp_check_output;
        ] );
    ]
