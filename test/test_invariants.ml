(* Cross-module invariants: monotonicity and consistency laws that tie the
   analytic, scheduling, and simulation layers together. *)

let test_expected_work_decreasing_in_c () =
  let lf = Families.uniform ~lifespan:100.0 in
  let s = Schedule.of_list [ 12.0; 10.0; 8.0 ] in
  let prev = ref infinity in
  List.iter
    (fun c ->
      let e = Schedule.expected_work ~c lf s in
      Alcotest.(check bool)
        (Printf.sprintf "E at c=%g below E at smaller c" c)
        true (e <= !prev +. 1e-12);
      prev := e)
    [ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0 ]

let test_guideline_value_decreasing_in_c () =
  let lf = Families.uniform ~lifespan:100.0 in
  let prev = ref infinity in
  List.iter
    (fun c ->
      let e = (Guideline.plan lf ~c).Guideline.expected_work in
      Alcotest.(check bool)
        (Printf.sprintf "plan value at c=%g monotone" c)
        true (e <= !prev +. 1e-9);
      prev := e)
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let test_guideline_value_increasing_in_lifespan () =
  let prev = ref 0.0 in
  List.iter
    (fun l ->
      let lf = Families.uniform ~lifespan:l in
      let e = (Guideline.plan lf ~c:1.0).Guideline.expected_work in
      Alcotest.(check bool)
        (Printf.sprintf "plan value at L=%g monotone" l)
        true (e >= !prev -. 1e-9);
      prev := e)
    [ 10.0; 25.0; 50.0; 100.0; 200.0 ]

let test_dynamic_consistency_of_recurrence () =
  (* The E13 finding as a law: after surviving the first period, the
     online (conditional) planner's next period equals the original plan's
     second period — the recurrence is "progressive" exactly as §6 says. *)
  List.iter
    (fun (name, lf) ->
      let c = 1.0 in
      let plan = Guideline.plan lf ~c in
      if Schedule.num_periods plan.Guideline.schedule >= 2 then begin
        let t0 = plan.Guideline.t0 in
        let t1 = Schedule.period plan.Guideline.schedule 1 in
        match Guideline.next_period_online lf ~c ~elapsed:t0 with
        | Some online_t1 ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: online %.4f ~ planned %.4f" name online_t1 t1)
              true
              (Float.abs (online_t1 -. t1) <= 0.02 *. Float.max 1.0 t1)
        | None -> Alcotest.failf "%s: online planner gave up early" name
      end)
    (Families.all_paper_scenarios ~c:1.0)

let test_adaptive_farm_policy_equals_static () =
  (* Farm-level consequence of dynamic consistency: adaptive re-planning
     reproduces the static guideline run exactly (same seeds). *)
  let ws =
    { Farm.ws_life = Families.uniform ~lifespan:100.0; ws_presence_mean = 50.0 }
  in
  let cfg policy =
    {
      Farm.c = 1.0;
      total_work = 300.0;
      workstations = [ ws; ws ];
      policy;
      max_time = 1e6;
    }
  in
  List.iter
    (fun seed ->
      let a = Farm.run (cfg Farm.guideline_policy) ~seed in
      let b = Farm.run (cfg Farm.adaptive_policy) ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld makespans within 1%%" seed)
        true
        (Float.abs (a.Farm.makespan -. b.Farm.makespan)
        <= 0.01 *. a.Farm.makespan))
    [ 1L; 2L; 3L ]

let test_optimizer_dominates_every_other_planner () =
  (* The brute-force optimum is an upper envelope for every planner in the
     repo (to solver tolerance). *)
  let c = 1.0 in
  List.iter
    (fun (name, lf) ->
      let o = (Optimizer.optimal_schedule lf ~c).Optimizer.expected_work in
      let candidates =
        (Guideline.plan lf ~c).Guideline.expected_work
        :: (Greedy.plan lf ~c).Greedy.expected_work
        :: List.map
             (fun b -> b.Baselines.expected_work)
             (Baselines.all lf ~c)
      in
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: optimizer envelope" name)
            true
            (e <= o +. (0.001 *. Float.max 1.0 o)))
        candidates)
    (Families.all_paper_scenarios ~c)

let test_mean_lifetime_consistency () =
  (* ∫p computed three ways: quadrature (mean_lifetime), sampling, and the
     suspend-contract value at c = 0 over the whole horizon. *)
  let lf = Families.geometric_increasing ~lifespan:30.0 in
  let quad = Life_function.mean_lifetime lf in
  let via_contract =
    Contracts.single_period_value ~c:0.0 lf
  in
  Alcotest.(check (float 1e-6)) "quadrature = contract at c=0" quad via_contract;
  let sampler = Reclaim.create lf in
  let g = Prng.create ~seed:5L in
  let sampled = Reclaim.mean_of_draws sampler g ~n:200_000 in
  Alcotest.(check bool) "sampled mean close" true
    (Float.abs (sampled -. quad) < 0.02 *. quad)

let test_checkpoint_farm_throughput_triangle () =
  (* The same (p, c) through three independent formalisms must agree on
     the per-episode expectation. *)
  let lf = Families.exponential ~rate:0.02 in
  let c = 1.0 in
  let plan = Checkpoint.plan_saves lf ~c in
  let g = Guideline.plan lf ~c in
  let thr = Throughput.of_guideline lf ~c ~presence_mean:10.0 in
  Alcotest.(check (float 1e-9)) "checkpoint = guideline"
    g.Guideline.expected_work plan.Checkpoint.expected_committed;
  Alcotest.(check (float 1e-9)) "throughput numerator = guideline"
    g.Guideline.expected_work thr.Throughput.work_per_cycle

let prop_expected_work_superadditive_under_concat =
  (* Appending a schedule after another yields at least the first part's
     E (extra periods can only add nonnegative expected contributions). *)
  QCheck.Test.make
    ~name:"appending periods never decreases expected work" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 6) (float_range 0.5 10.0))
        (array_of_size Gen.(int_range 1 6) (float_range 0.5 10.0)))
    (fun (a, b) ->
      let lf = Families.uniform ~lifespan:100.0 in
      let s1 = Schedule.of_periods a in
      let s2 = Schedule.of_periods (Array.append a b) in
      Schedule.expected_work ~c:1.0 lf s2
      >= Schedule.expected_work ~c:1.0 lf s1 -. 1e-12)

let prop_scaling_covariance =
  (* Scaling time by k scales the optimal value structure: E for
     (scale_time k p, k*c) on the k-scaled schedule equals k * E for
     (p, c) on the original. *)
  QCheck.Test.make ~name:"time-scaling covariance of expected work" ~count:100
    QCheck.(
      pair (float_range 0.5 8.0)
        (array_of_size Gen.(int_range 1 8) (float_range 0.5 10.0)))
    (fun (k, ts) ->
      let lf = Families.uniform ~lifespan:100.0 in
      let scaled = Families.scale_time ~factor:k lf in
      let s = Schedule.of_periods ts in
      let s_scaled = Schedule.of_periods (Array.map (fun t -> k *. t) ts) in
      let e = Schedule.expected_work ~c:1.0 lf s in
      let e_scaled = Schedule.expected_work ~c:k scaled s_scaled in
      Float.abs (e_scaled -. (k *. e)) <= 1e-6 *. Float.max 1.0 (k *. e))

let () =
  Alcotest.run "invariants"
    [
      ( "invariants",
        [
          Alcotest.test_case "E decreasing in c" `Quick
            test_expected_work_decreasing_in_c;
          Alcotest.test_case "plan value decreasing in c" `Quick
            test_guideline_value_decreasing_in_c;
          Alcotest.test_case "plan value increasing in L" `Quick
            test_guideline_value_increasing_in_lifespan;
          Alcotest.test_case "dynamic consistency (Sec 6)" `Quick
            test_dynamic_consistency_of_recurrence;
          Alcotest.test_case "adaptive farm = static farm" `Quick
            test_adaptive_farm_policy_equals_static;
          Alcotest.test_case "optimizer is the envelope" `Quick
            test_optimizer_dominates_every_other_planner;
          Alcotest.test_case "mean lifetime three ways" `Quick
            test_mean_lifetime_consistency;
          Alcotest.test_case "checkpoint/guideline/throughput triangle" `Quick
            test_checkpoint_farm_throughput_triangle;
          QCheck_alcotest.to_alcotest
            prop_expected_work_superadditive_under_concat;
          QCheck_alcotest.to_alcotest prop_scaling_covariance;
        ] );
    ]
