(* End-to-end pipelines crossing every library boundary: the flows a
   downstream user of this reproduction would actually run. *)

let test_trace_to_farm_pipeline () =
  (* Synthesize owner traces -> estimate survival -> fit a family ->
     guideline-schedule -> validate by simulation. *)
  let rng = Prng.create ~seed:2026L in
  let model = Owner_model.Uniform_absence { max = 60.0 } in
  let durations =
    Array.init 3000 (fun _ -> Owner_model.sample model rng)
  in
  (* Route A: nonparametric estimate. *)
  let est = Survival.of_durations durations in
  let plan_np = Guideline.plan est.Survival.life ~c:1.0 in
  (* Route B: parametric fit. *)
  let fit = Fit.best_fit durations in
  let plan_p = Guideline.plan fit.Fit.life ~c:1.0 in
  (* Both schedules, evaluated under the TRUE life function, should come
     close to the schedule planned with the truth itself. *)
  let truth = Option.get (Owner_model.true_life_function model) in
  let e_true = (Guideline.plan truth ~c:1.0).Guideline.expected_work in
  let eval s = Schedule.expected_work ~c:1.0 truth s in
  let e_np = eval plan_np.Guideline.schedule in
  let e_p = eval plan_p.Guideline.schedule in
  Alcotest.(check bool)
    (Printf.sprintf "nonparametric within 5%% (%.3f vs %.3f)" e_np e_true)
    true
    (e_np >= 0.95 *. e_true);
  Alcotest.(check bool)
    (Printf.sprintf "parametric within 5%% (%.3f vs %.3f)" e_p e_true)
    true
    (e_p >= 0.95 *. e_true)

let test_schedule_task_farm_with_pool () =
  (* Task-granular farm episode: guideline periods + pool checkout/commit,
     with kills returning bundles. *)
  let lf = Families.uniform ~lifespan:100.0 in
  let c = 1.0 in
  let g = Guideline.plan lf ~c in
  let tasks = Apps.monte_carlo_batches ~batches:200 ~samples_per_batch:50 ~sample_time:0.01 in
  let pool = Pool.create tasks in
  let sampler = Reclaim.create lf in
  let rng = Prng.create ~seed:11L in
  (* Run episodes until the pool drains. *)
  let episodes = ref 0 in
  while (not (Pool.is_finished pool)) && !episodes < 10_000 do
    incr episodes;
    let reclaim_at = Reclaim.draw sampler rng in
    let elapsed = ref 0.0 in
    let periods = Schedule.periods g.Guideline.schedule in
    (try
       Array.iter
         (fun t ->
           if Pool.is_finished pool then raise Exit;
           let budget = Schedule.positive_sub t c in
           match Pool.checkout pool ~budget with
           | None -> raise Exit
           | Some bundle ->
               let period_len = c +. bundle.Pool.work in
               if !elapsed +. period_len <= reclaim_at then begin
                 elapsed := !elapsed +. period_len;
                 Pool.commit pool bundle
               end
               else begin
                 Pool.return_bundle pool bundle;
                 raise Exit
               end)
         periods
     with Exit -> ())
  done;
  Alcotest.(check bool) "pool drained" true (Pool.is_finished pool);
  Alcotest.(check (float 1e-6)) "all work done"
    (Task.total_duration tasks) (Pool.done_work pool)

let test_checkpoint_vs_cyclestealing_duality () =
  (* The same (p, c) pair through both front ends gives identical
     schedules — the paper's formal correspondence. *)
  let lf = Families.geometric_increasing ~lifespan:40.0 in
  let g = Guideline.plan lf ~c:0.5 in
  let p = Checkpoint.plan_saves lf ~c:0.5 in
  Alcotest.(check bool) "identical interval structure" true
    (Schedule.equal ~tol:1e-9 g.Guideline.schedule p.Checkpoint.intervals)

let test_full_report_on_trace_derived_schedule () =
  (* Theory checks degrade gracefully on trace-derived (Unknown-shape)
     life functions. *)
  let rng = Prng.create ~seed:5L in
  let ds =
    Array.init 800 (fun _ ->
        Owner_model.sample (Owner_model.Coffee_break { typical = 12.0; spread = 3.0 }) rng)
  in
  let est = Survival.of_durations ds in
  let g = Guideline.plan est.Survival.life ~c:0.5 in
  let report = Theory.full_report est.Survival.life ~c:0.5 g.Guideline.schedule in
  Alcotest.(check int) "all five checks ran" 5 (List.length report);
  (* The recurrence check must hold: the schedule was built from it. *)
  let rec_check =
    List.find (fun c -> c.Theory.name = "cor-3.1-recurrence") report
  in
  Alcotest.(check bool) ("recurrence: " ^ rec_check.Theory.detail) true
    rec_check.Theory.holds

let test_discretized_guideline_in_monte_carlo () =
  (* Quantized schedules should lose only the predicted amount of expected
     work when replayed in simulation. *)
  let lf = Families.uniform ~lifespan:100.0 in
  let c = 1.0 in
  let g = Guideline.plan lf ~c in
  let q = Discretize.quantize lf ~c ~task:2.0 g.Guideline.schedule in
  let est =
    Monte_carlo.estimate ~trials:20_000 lf ~c ~schedule:q.Discretize.schedule
      ~seed:31L
  in
  Alcotest.(check bool) "MC within 3% of quantized analytic" true
    (Float.abs (est.Monte_carlo.mean_work -. q.Discretize.expected_work)
    < 0.03 *. q.Discretize.expected_work)

let test_admissibility_gates_scheduling () =
  (* For an inadmissible life function, the guideline still produces a
     schedule (finite horizon truncation) but the user can detect the
     situation with the admissibility API. *)
  let lf = Families.power_law ~d:2.0 in
  Alcotest.(check bool) "detected inadmissible" false
    (Admissibility.is_admissible lf ~c:1.0);
  (* The machinery still degrades gracefully rather than diverging. *)
  let g = Guideline.plan lf ~c:1.0 in
  Alcotest.(check bool) "finite schedule" true
    (Schedule.num_periods g.Guideline.schedule < 100_000)

let () =
  Alcotest.run "integration"
    [
      ( "integration",
        [
          Alcotest.test_case "trace -> fit -> schedule -> evaluate" `Slow
            test_trace_to_farm_pipeline;
          Alcotest.test_case "schedule + task pool episode loop" `Quick
            test_schedule_task_farm_with_pool;
          Alcotest.test_case "checkpoint/cycle-stealing duality" `Quick
            test_checkpoint_vs_cyclestealing_duality;
          Alcotest.test_case "theory report on trace-derived p" `Quick
            test_full_report_on_trace_derived_schedule;
          Alcotest.test_case "discretized schedule in MC" `Quick
            test_discretized_guideline_in_monte_carlo;
          Alcotest.test_case "admissibility gates scheduling" `Quick
            test_admissibility_gates_scheduling;
        ] );
    ]
