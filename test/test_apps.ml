let test_matrix_blocks () =
  let tasks = Apps.matrix_blocks ~n:4 ~block:8 ~flop_time:1e-3 in
  Alcotest.(check int) "n^2 blocks" 16 (List.length tasks);
  let expected = 2.0 *. 512.0 *. 1e-3 in
  List.iter
    (fun t ->
      Alcotest.(check (float 1e-12)) "block flops" expected t.Task.duration)
    tasks

let test_matrix_blocks_labels () =
  let tasks = Apps.matrix_blocks ~n:2 ~block:2 ~flop_time:1.0 in
  let labels = List.map (fun t -> t.Task.label) tasks in
  Alcotest.(check (list string)) "row-major labels"
    [ "block(0,0)"; "block(0,1)"; "block(1,0)"; "block(1,1)" ]
    labels

let test_matrix_blocks_validation () =
  match Apps.matrix_blocks ~n:0 ~block:1 ~flop_time:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 0 accepted"

let test_monte_carlo_batches () =
  let tasks =
    Apps.monte_carlo_batches ~batches:10 ~samples_per_batch:1000
      ~sample_time:0.002
  in
  Alcotest.(check int) "batches" 10 (List.length tasks);
  List.iter
    (fun t -> Alcotest.(check (float 1e-12)) "batch time" 2.0 t.Task.duration)
    tasks

let test_parameter_sweep_band () =
  let g = Prng.create ~seed:3L in
  let tasks = Apps.parameter_sweep ~configs:500 ~base_time:10.0 ~spread:0.5 g in
  Alcotest.(check int) "configs" 500 (List.length tasks);
  List.iter
    (fun t ->
      if t.Task.duration < 10.0 /. 1.5 -. 1e-9
         || t.Task.duration > 15.0 +. 1e-9 then
        Alcotest.failf "duration %g outside band" t.Task.duration)
    tasks

let test_parameter_sweep_zero_spread () =
  let g = Prng.create ~seed:4L in
  let tasks = Apps.parameter_sweep ~configs:5 ~base_time:3.0 ~spread:0.0 g in
  List.iter
    (fun t -> Alcotest.(check (float 0.0)) "constant" 3.0 t.Task.duration)
    tasks

let test_parameter_sweep_validation () =
  let g = Prng.create ~seed:5L in
  match Apps.parameter_sweep ~configs:1 ~base_time:1.0 ~spread:(-0.1) g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative spread accepted"

let test_apps_feed_discretize () =
  (* Application tasks integrate with schedule quantization. *)
  let lf = Families.uniform ~lifespan:200.0 in
  let g = Guideline.plan lf ~c:1.0 in
  let tasks = Apps.monte_carlo_batches ~batches:50 ~samples_per_batch:100 ~sample_time:0.01 in
  let task_time = (List.hd tasks).Task.duration in
  let q = Discretize.quantize lf ~c:1.0 ~task:task_time g.Guideline.schedule in
  Alcotest.(check bool) "tasks assigned" true (q.Discretize.total_tasks > 0)

let () =
  Alcotest.run "apps"
    [
      ( "apps",
        [
          Alcotest.test_case "matrix blocks" `Quick test_matrix_blocks;
          Alcotest.test_case "matrix labels" `Quick test_matrix_blocks_labels;
          Alcotest.test_case "matrix validation" `Quick
            test_matrix_blocks_validation;
          Alcotest.test_case "monte carlo batches" `Quick
            test_monte_carlo_batches;
          Alcotest.test_case "parameter sweep band" `Quick
            test_parameter_sweep_band;
          Alcotest.test_case "zero spread" `Quick
            test_parameter_sweep_zero_spread;
          Alcotest.test_case "sweep validation" `Quick
            test_parameter_sweep_validation;
          Alcotest.test_case "feeds discretize" `Quick test_apps_feed_discretize;
        ] );
    ]
