let c = 1.0

let test_mc_matches_analytic_uniform () =
  let lf = Families.uniform ~lifespan:100.0 in
  let g = Guideline.plan lf ~c in
  let est =
    Monte_carlo.estimate ~trials:40_000 lf ~c ~schedule:g.Guideline.schedule
      ~seed:42L
  in
  let lo, hi = est.Monte_carlo.ci95 in
  Alcotest.(check bool) "analytic E inside MC 95% CI (slightly widened)" true
    (est.Monte_carlo.analytic >= lo -. (0.3 *. (hi -. lo))
    && est.Monte_carlo.analytic <= hi +. (0.3 *. (hi -. lo)))

let test_mc_matches_analytic_geo_dec () =
  let lf = Families.geometric_decreasing ~a:(exp 0.05) in
  let exact = Exact.geometric_decreasing ~c ~a:(exp 0.05) in
  let est =
    Monte_carlo.estimate ~trials:40_000 lf ~c ~schedule:exact.Exact.schedule
      ~seed:7L
  in
  Alcotest.(check bool) "relative gap < 2%" true
    (Float.abs (est.Monte_carlo.mean_work -. est.Monte_carlo.analytic)
    < 0.02 *. est.Monte_carlo.analytic)

let test_mc_matches_analytic_geo_inc () =
  let lf = Families.geometric_increasing ~lifespan:30.0 in
  let g = Guideline.plan lf ~c in
  let est =
    Monte_carlo.estimate ~trials:40_000 lf ~c ~schedule:g.Guideline.schedule
      ~seed:13L
  in
  Alcotest.(check bool) "relative gap < 2%" true
    (Float.abs (est.Monte_carlo.mean_work -. est.Monte_carlo.analytic)
    < 0.02 *. Float.max 1.0 est.Monte_carlo.analytic)

let test_mc_deterministic_in_seed () =
  let lf = Families.uniform ~lifespan:50.0 in
  let s = Schedule.of_list [ 10.0; 8.0 ] in
  let e1 = Monte_carlo.estimate ~trials:1000 lf ~c ~schedule:s ~seed:5L in
  let e2 = Monte_carlo.estimate ~trials:1000 lf ~c ~schedule:s ~seed:5L in
  Alcotest.(check (float 0.0)) "same mean" e1.Monte_carlo.mean_work
    e2.Monte_carlo.mean_work

let test_mc_interrupted_fraction () =
  (* Single period spanning the whole lifespan: interrupted with
     probability 1 under uniform risk (reclaim < L a.s.). *)
  let lf = Families.uniform ~lifespan:50.0 in
  let s = Schedule.of_list [ 49.99 ] in
  let est = Monte_carlo.estimate ~trials:5000 lf ~c ~schedule:s ~seed:3L in
  Alcotest.(check bool) "almost always interrupted" true
    (est.Monte_carlo.interrupted_fraction > 0.99)

let test_mc_validation () =
  let lf = Families.uniform ~lifespan:10.0 in
  let s = Schedule.of_list [ 1.0 ] in
  match Monte_carlo.estimate ~trials:1 lf ~c ~schedule:s ~seed:1L with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "trials = 1 accepted"

let test_compare_policies_ranking () =
  (* Guideline should outrank the single period under common random
     numbers, matching the analytic ordering. *)
  let lf = Families.uniform ~lifespan:100.0 in
  let g = Guideline.plan lf ~c in
  let naive = Baselines.single_period lf ~c in
  let runs =
    Monte_carlo.compare_policies ~trials:5000 lf ~c
      ~policies:
        [
          ("guideline", g.Guideline.schedule);
          ("single", naive.Baselines.schedule);
        ]
      ~seed:17L
  in
  (match runs with
  | first :: _ ->
      Alcotest.(check string) "guideline first" "guideline"
        first.Monte_carlo.policy_name
  | [] -> Alcotest.fail "no runs");
  List.iter
    (fun r -> Alcotest.(check int) "episodes" 5000 r.Monte_carlo.episodes)
    runs

let test_compare_policies_common_randoms () =
  (* The same policy listed twice must get the exact same mean (CRN). *)
  let lf = Families.uniform ~lifespan:100.0 in
  let s = Schedule.of_list [ 20.0; 10.0 ] in
  match
    Monte_carlo.compare_policies ~trials:2000 lf ~c
      ~policies:[ ("a", s); ("b", s) ]
      ~seed:23L
  with
  | [ r1; r2 ] ->
      Alcotest.(check (float 0.0)) "identical means"
        r1.Monte_carlo.mean_work_per_episode r2.Monte_carlo.mean_work_per_episode
  | _ -> Alcotest.fail "expected two runs"

let prop_mc_within_5_sigma =
  QCheck.Test.make ~name:"MC mean within 5 standard errors of analytic E"
    ~count:10
    QCheck.(pair (float_range 0.5 2.0) (float_range 30.0 120.0))
    (fun (c, l) ->
      let lf = Families.uniform ~lifespan:l in
      let g = Guideline.plan lf ~c in
      let est =
        Monte_carlo.estimate ~trials:8000 lf ~c ~schedule:g.Guideline.schedule
          ~seed:99L
      in
      let lo, hi = est.Monte_carlo.ci95 in
      let se = (hi -. lo) /. (2.0 *. 1.96) in
      Float.abs (est.Monte_carlo.mean_work -. est.Monte_carlo.analytic)
      < 5.0 *. se)

let () =
  Alcotest.run "monte_carlo"
    [
      ( "monte_carlo",
        [
          Alcotest.test_case "uniform CI covers analytic" `Quick
            test_mc_matches_analytic_uniform;
          Alcotest.test_case "geo-dec matches" `Quick
            test_mc_matches_analytic_geo_dec;
          Alcotest.test_case "geo-inc matches" `Quick
            test_mc_matches_analytic_geo_inc;
          Alcotest.test_case "deterministic in seed" `Quick
            test_mc_deterministic_in_seed;
          Alcotest.test_case "interrupted fraction" `Quick
            test_mc_interrupted_fraction;
          Alcotest.test_case "validation" `Quick test_mc_validation;
          Alcotest.test_case "policy ranking" `Quick
            test_compare_policies_ranking;
          Alcotest.test_case "common random numbers" `Quick
            test_compare_policies_common_randoms;
          QCheck_alcotest.to_alcotest prop_mc_within_5_sigma;
        ] );
    ]
