let feq eps a b = Alcotest.(check (float eps)) "value" a b

(* --- constructors and validation ----------------------------------- *)

let test_make_validates_p0 () =
  match
    Life_function.make ~name:"bad" ~support:(Life_function.Bounded 1.0)
      (fun _ -> 0.5)
  with
  | exception Life_function.Invalid_life_function _ -> ()
  | _ -> Alcotest.fail "expected Invalid_life_function (p(0) != 1)"

let test_make_validates_monotone () =
  match
    Life_function.make ~name:"bumpy" ~support:(Life_function.Bounded 1.0)
      (fun t -> Float.min 1.0 (1.0 -. t +. (0.5 *. sin (20.0 *. t))))
  with
  | exception Life_function.Invalid_life_function _ -> ()
  | _ -> Alcotest.fail "expected Invalid_life_function (not monotone)"

let test_make_validates_support () =
  match
    Life_function.make ~name:"neg" ~support:(Life_function.Bounded (-1.0))
      (fun _ -> 1.0)
  with
  | exception Life_function.Invalid_life_function _ -> ()
  | _ -> Alcotest.fail "expected Invalid_life_function (bad lifespan)"

let test_eval_clamps () =
  let lf = Families.uniform ~lifespan:10.0 in
  feq 0.0 1.0 (Life_function.eval lf (-5.0));
  feq 0.0 0.0 (Life_function.eval lf 11.0);
  feq 1e-12 0.5 (Life_function.eval lf 5.0)

(* --- family definitions against the paper's formulas ----------------- *)

let test_uniform_formula () =
  let lf = Families.uniform ~lifespan:4.0 in
  feq 1e-12 0.75 (Life_function.eval lf 1.0);
  feq 1e-12 (-0.25) (Life_function.deriv lf 1.0)

let test_polynomial_formula () =
  let lf = Families.polynomial ~d:3 ~lifespan:2.0 in
  (* p(1) = 1 - 1/8 *)
  feq 1e-12 0.875 (Life_function.eval lf 1.0);
  (* p'(t) = -3 t^2 / 8 *)
  feq 1e-12 (-0.375) (Life_function.deriv lf 1.0)

let test_polynomial_d1_is_uniform () =
  let p1 = Families.polynomial ~d:1 ~lifespan:7.0 in
  let u = Families.uniform ~lifespan:7.0 in
  List.iter
    (fun t ->
      feq 1e-12 (Life_function.eval u t) (Life_function.eval p1 t))
    [ 0.0; 1.0; 3.5; 6.9 ]

let test_geometric_decreasing_formula () =
  let lf = Families.geometric_decreasing ~a:2.0 in
  feq 1e-12 0.5 (Life_function.eval lf 1.0);
  feq 1e-12 0.25 (Life_function.eval lf 2.0);
  feq 1e-12 (-.(log 2.0) /. 2.0) (Life_function.deriv lf 1.0)

let test_exponential_equals_geometric () =
  let e = Families.exponential ~rate:0.3 in
  let g = Families.geometric_decreasing ~a:(exp 0.3) in
  List.iter
    (fun t -> feq 1e-12 (Life_function.eval g t) (Life_function.eval e t))
    [ 0.0; 1.0; 5.0; 20.0 ]

let test_geometric_increasing_formula () =
  (* Direct formula for small L where 2^L is exactly representable. *)
  let l = 10.0 in
  let lf = Families.geometric_increasing ~lifespan:l in
  let direct t = ((2.0 ** l) -. (2.0 ** t)) /. ((2.0 ** l) -. 1.0) in
  List.iter
    (fun t -> feq 1e-12 (direct t) (Life_function.eval lf t))
    [ 0.0; 1.0; 5.0; 9.0; 9.99 ]

let test_geometric_increasing_large_l_stable () =
  (* 2^2000 overflows; the stable form must still work. Halfway through a
     lifespan this long the survival is 1.0 to double precision (all decay
     happens in the last ~50 time units), so probe both regions. *)
  let lf = Families.geometric_increasing ~lifespan:2000.0 in
  let mid = Life_function.eval lf 1000.0 in
  Alcotest.(check bool) "finite and in (0,1]" true (mid > 0.0 && mid <= 1.0);
  let near_end = Life_function.eval lf 1995.0 in
  Alcotest.(check bool) "strictly inside (0,1) near the end" true
    (near_end > 0.0 && near_end < 1.0)

let test_weibull_shape1_is_exponential () =
  let w = Families.weibull ~shape:1.0 ~scale:2.0 in
  let e = Families.exponential ~rate:0.5 in
  List.iter
    (fun t -> feq 1e-12 (Life_function.eval e t) (Life_function.eval w t))
    [ 0.5; 1.0; 4.0 ]

let test_power_law_formula () =
  let lf = Families.power_law ~d:2.0 in
  feq 1e-12 0.25 (Life_function.eval lf 1.0);
  feq 1e-12 (1.0 /. 9.0) (Life_function.eval lf 2.0)

let test_family_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      (fun () -> ignore (Families.uniform ~lifespan:0.0));
      (fun () -> ignore (Families.polynomial ~d:0 ~lifespan:1.0));
      (fun () -> ignore (Families.geometric_decreasing ~a:1.0));
      (fun () -> ignore (Families.exponential ~rate:(-1.0)));
      (fun () -> ignore (Families.geometric_increasing ~lifespan:(-2.0)));
      (fun () -> ignore (Families.weibull ~shape:0.0 ~scale:1.0));
      (fun () -> ignore (Families.power_law ~d:0.0));
      (fun () -> ignore (Families.scale_time ~factor:0.0 (Families.uniform ~lifespan:1.0)));
    ]

(* --- calculus ------------------------------------------------------- *)

let test_numeric_derivative_fallback () =
  (* Construct without dp: deriv must fall back to finite differences. *)
  let lf =
    Life_function.make ~name:"no-dp" ~support:(Life_function.Bounded 10.0)
      (fun t -> 1.0 -. (t /. 10.0))
  in
  feq 1e-5 (-0.1) (Life_function.deriv lf 5.0)

let test_hazard_exponential_constant () =
  let lf = Families.exponential ~rate:0.7 in
  List.iter (fun t -> feq 1e-9 0.7 (Life_function.hazard lf t)) [ 0.5; 2.0; 10.0 ]

let test_hazard_uniform_increasing () =
  let lf = Families.uniform ~lifespan:10.0 in
  let h1 = Life_function.hazard lf 1.0 in
  let h9 = Life_function.hazard lf 9.0 in
  Alcotest.(check bool) "hazard increases" true (h9 > h1);
  (* h(t) = 1/(L - t) *)
  feq 1e-9 (1.0 /. 9.0) h1

let test_hazard_at_zero_survival () =
  let lf = Families.uniform ~lifespan:1.0 in
  Alcotest.(check bool) "infinite hazard" true
    (Life_function.hazard lf 1.0 = infinity)

let test_conditional_survival_memoryless () =
  (* Exponential: P(T > s + e | T > e) = P(T > s). *)
  let lf = Families.exponential ~rate:0.2 in
  feq 1e-9
    (Life_function.eval lf 3.0)
    (Life_function.conditional_survival lf ~elapsed:5.0 3.0)

let test_conditional_survival_uniform () =
  let lf = Families.uniform ~lifespan:10.0 in
  (* P(T > 5+2 | T > 5) = p(7)/p(5) = 0.3/0.5 *)
  feq 1e-9 0.6 (Life_function.conditional_survival lf ~elapsed:5.0 2.0)

let test_quantile_time () =
  let lf = Families.uniform ~lifespan:10.0 in
  feq 1e-6 5.0 (Life_function.quantile_time lf ~q:0.5);
  let e = Families.exponential ~rate:1.0 in
  feq 1e-6 (log 2.0) (Life_function.quantile_time e ~q:0.5)

let test_horizon_bounded () =
  let lf = Families.uniform ~lifespan:42.0 in
  feq 0.0 42.0 (Life_function.horizon lf)

let test_horizon_unbounded () =
  let lf = Families.exponential ~rate:1.0 in
  let h = Life_function.horizon lf in
  Alcotest.(check bool) "p(horizon) tiny" true (Life_function.eval lf h <= 1e-12)

(* --- shape classification ------------------------------------------- *)

let test_classify_shapes () =
  let check name expected lf =
    let got = Life_function.classify_shape lf in
    Alcotest.(check bool)
      (Printf.sprintf "%s classified" name)
      true (got = expected)
  in
  check "uniform" Life_function.Linear (Families.uniform ~lifespan:10.0);
  check "polynomial d=2" Life_function.Concave
    (Families.polynomial ~d:2 ~lifespan:10.0);
  check "geometric decreasing" Life_function.Convex
    (Families.geometric_decreasing ~a:2.0);
  check "geometric increasing" Life_function.Concave
    (Families.geometric_increasing ~lifespan:10.0)

let test_scale_time () =
  let lf = Families.uniform ~lifespan:10.0 in
  let scaled = Families.scale_time ~factor:60.0 lf in
  feq 1e-12 0.5 (Life_function.eval scaled 300.0);
  (match Life_function.support scaled with
  | Life_function.Bounded l -> feq 1e-9 600.0 l
  | Life_function.Unbounded -> Alcotest.fail "expected bounded support");
  feq 1e-12
    (Life_function.deriv lf 5.0 /. 60.0)
    (Life_function.deriv scaled 300.0)

let test_of_interpolant_requires_zero_origin () =
  let ip = Interp.pchip ~xs:[| 1.0; 2.0; 3.0 |] ~ys:[| 1.0; 0.5; 0.0 |] in
  match Families.of_interpolant ~name:"bad-origin" ip with
  | exception Life_function.Invalid_life_function _ -> ()
  | _ -> Alcotest.fail "domain not starting at 0 accepted"

let test_of_interpolant_roundtrip () =
  let ip =
    Interp.pchip ~xs:[| 0.0; 5.0; 10.0 |] ~ys:[| 1.0; 0.4; 0.0 |]
  in
  let lf = Families.of_interpolant ~name:"tri" ip in
  feq 1e-9 0.4 (Life_function.eval lf 5.0);
  Alcotest.(check bool) "derivative nonpositive" true
    (Life_function.deriv lf 5.0 <= 0.0);
  match Life_function.support lf with
  | Life_function.Bounded l -> feq 1e-9 10.0 l
  | Life_function.Unbounded -> Alcotest.fail "expected bounded"

let test_pp_mentions_name_and_shape () =
  let s = Format.asprintf "%a" Life_function.pp (Families.uniform ~lifespan:7.0) in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has name" true (contains s "uniform");
  Alcotest.(check bool) "has shape" true (contains s "linear")

let test_all_paper_scenarios_valid () =
  let scenarios = Families.all_paper_scenarios ~c:1.0 in
  Alcotest.(check int) "five scenarios" 5 (List.length scenarios);
  List.iter
    (fun (_, lf) ->
      Alcotest.(check bool) "decreasing" true
        (Life_function.is_decreasing_on_grid lf))
    scenarios

let prop_families_decreasing =
  QCheck.Test.make ~name:"all families decrease on their support" ~count:50
    QCheck.(pair (float_range 1.5 8.0) (float_range 5.0 500.0))
    (fun (a, l) ->
      List.for_all Life_function.is_decreasing_on_grid
        [
          Families.uniform ~lifespan:l;
          Families.polynomial ~d:2 ~lifespan:l;
          Families.polynomial ~d:4 ~lifespan:l;
          Families.geometric_decreasing ~a;
          Families.geometric_increasing ~lifespan:(Float.min l 100.0);
        ])

let prop_deriv_negative_in_interior =
  QCheck.Test.make ~name:"derivatives are nonpositive inside the support"
    ~count:100
    QCheck.(pair (float_range 10.0 100.0) (float_range 0.05 0.95))
    (fun (l, frac) ->
      let t = frac *. l in
      Life_function.deriv (Families.uniform ~lifespan:l) t <= 0.0
      && Life_function.deriv (Families.polynomial ~d:3 ~lifespan:l) t <= 0.0
      && Life_function.deriv (Families.geometric_increasing ~lifespan:(Float.min l 50.0)) (frac *. Float.min l 50.0) <= 0.0)

let () =
  Alcotest.run "lifefn"
    [
      ( "validation",
        [
          Alcotest.test_case "p(0) = 1 enforced" `Quick test_make_validates_p0;
          Alcotest.test_case "monotonicity enforced" `Quick
            test_make_validates_monotone;
          Alcotest.test_case "support validated" `Quick
            test_make_validates_support;
          Alcotest.test_case "eval clamps" `Quick test_eval_clamps;
          Alcotest.test_case "family arg validation" `Quick
            test_family_validation;
        ] );
      ( "families",
        [
          Alcotest.test_case "uniform formula" `Quick test_uniform_formula;
          Alcotest.test_case "polynomial formula" `Quick
            test_polynomial_formula;
          Alcotest.test_case "polynomial d=1 = uniform" `Quick
            test_polynomial_d1_is_uniform;
          Alcotest.test_case "geometric decreasing" `Quick
            test_geometric_decreasing_formula;
          Alcotest.test_case "exponential = geometric" `Quick
            test_exponential_equals_geometric;
          Alcotest.test_case "geometric increasing" `Quick
            test_geometric_increasing_formula;
          Alcotest.test_case "geo increasing large L" `Quick
            test_geometric_increasing_large_l_stable;
          Alcotest.test_case "weibull shape 1" `Quick
            test_weibull_shape1_is_exponential;
          Alcotest.test_case "power law" `Quick test_power_law_formula;
          Alcotest.test_case "of_interpolant origin check" `Quick
            test_of_interpolant_requires_zero_origin;
          Alcotest.test_case "of_interpolant roundtrip" `Quick
            test_of_interpolant_roundtrip;
          Alcotest.test_case "pp output" `Quick test_pp_mentions_name_and_shape;
          Alcotest.test_case "paper scenarios valid" `Quick
            test_all_paper_scenarios_valid;
        ] );
      ( "calculus",
        [
          Alcotest.test_case "numeric derivative fallback" `Quick
            test_numeric_derivative_fallback;
          Alcotest.test_case "exp hazard constant" `Quick
            test_hazard_exponential_constant;
          Alcotest.test_case "uniform hazard increases" `Quick
            test_hazard_uniform_increasing;
          Alcotest.test_case "hazard at zero survival" `Quick
            test_hazard_at_zero_survival;
          Alcotest.test_case "memoryless conditional" `Quick
            test_conditional_survival_memoryless;
          Alcotest.test_case "uniform conditional" `Quick
            test_conditional_survival_uniform;
          Alcotest.test_case "quantile time" `Quick test_quantile_time;
          Alcotest.test_case "horizon bounded" `Quick test_horizon_bounded;
          Alcotest.test_case "horizon unbounded" `Quick test_horizon_unbounded;
          Alcotest.test_case "classify shapes" `Quick test_classify_shapes;
          Alcotest.test_case "scale time" `Quick test_scale_time;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_families_decreasing;
          QCheck_alcotest.to_alcotest prop_deriv_negative_in_interior;
        ] );
    ]
