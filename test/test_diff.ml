let feq eps a b = Alcotest.(check (float eps)) "derivative" a b

let test_central_polynomial () =
  (* d/dx (x^3) at 2 = 12 *)
  feq 1e-6 12.0 (Diff.central (fun x -> x ** 3.0) 2.0)

let test_central_exp () = feq 1e-6 (exp 1.0) (Diff.central exp 1.0)

let test_forward_backward () =
  feq 1e-4 (cos 1.0) (Diff.forward sin 1.0);
  feq 1e-4 (cos 1.0) (Diff.backward sin 1.0)

let test_richardson_high_accuracy () =
  feq 1e-10 (cos 1.0) (Diff.richardson sin 1.0)

let test_richardson_validation () =
  Alcotest.check_raises "levels >= 1"
    (Invalid_argument "Diff.richardson: levels must be >= 1") (fun () ->
      ignore (Diff.richardson ~levels:0 sin 1.0))

let test_second_derivative () =
  (* d2/dx2 (x^4) at 1 = 12 *)
  feq 1e-3 12.0 (Diff.second (fun x -> x ** 4.0) 1.0)

let test_second_of_linear_is_zero () =
  feq 1e-6 0.0 (Diff.second (fun x -> (3.0 *. x) +. 1.0) 5.0)

let test_support_interior () =
  feq 1e-5 (cos 0.5) (Diff.derivative_on_support ~lo:0.0 ~hi:1.0 sin 0.5)

let test_support_left_edge () =
  (* At the left edge the one-sided scheme must not evaluate below lo. *)
  let evals_below = ref false in
  let f x =
    if x < 0.0 then evals_below := true;
    x *. x
  in
  let d = Diff.derivative_on_support ~lo:0.0 ~hi:1.0 f 0.0 in
  Alcotest.(check bool) "no eval below support" false !evals_below;
  feq 1e-3 0.0 d

let test_support_right_edge () =
  let evals_above = ref false in
  let f x =
    if x > 1.0 then evals_above := true;
    x *. x
  in
  let d = Diff.derivative_on_support ~lo:0.0 ~hi:1.0 f 1.0 in
  Alcotest.(check bool) "no eval above support" false !evals_above;
  feq 1e-3 2.0 d

let test_support_unbounded () =
  feq 1e-5 (exp 2.0) (Diff.derivative_on_support ~lo:0.0 ~hi:infinity exp 2.0)

let test_support_outside_raises () =
  Alcotest.check_raises "outside support"
    (Invalid_argument "Diff.derivative_on_support: point outside support")
    (fun () -> ignore (Diff.derivative_on_support ~lo:0.0 ~hi:1.0 sin 2.0))

let prop_central_matches_cos =
  QCheck.Test.make ~name:"central diff of sin ~ cos" ~count:200
    QCheck.(float_range (-10.0) 10.0)
    (fun x -> Float.abs (Diff.central sin x -. cos x) < 1e-5)

let () =
  Alcotest.run "diff"
    [
      ( "diff",
        [
          Alcotest.test_case "central polynomial" `Quick test_central_polynomial;
          Alcotest.test_case "central exp" `Quick test_central_exp;
          Alcotest.test_case "forward/backward" `Quick test_forward_backward;
          Alcotest.test_case "richardson accuracy" `Quick
            test_richardson_high_accuracy;
          Alcotest.test_case "richardson validation" `Quick
            test_richardson_validation;
          Alcotest.test_case "second derivative" `Quick test_second_derivative;
          Alcotest.test_case "second of linear" `Quick
            test_second_of_linear_is_zero;
          Alcotest.test_case "support interior" `Quick test_support_interior;
          Alcotest.test_case "support left edge" `Quick test_support_left_edge;
          Alcotest.test_case "support right edge" `Quick
            test_support_right_edge;
          Alcotest.test_case "support unbounded" `Quick test_support_unbounded;
          Alcotest.test_case "outside support raises" `Quick
            test_support_outside_raises;
          QCheck_alcotest.to_alcotest prop_central_matches_cos;
        ] );
    ]
