let test_determinism () =
  let g1 = Prng.create ~seed:123L in
  let g2 = Prng.create ~seed:123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 g1)
      (Prng.next_int64 g2)
  done

let test_different_seeds_differ () =
  let g1 = Prng.create ~seed:1L in
  let g2 = Prng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 g1 = Prng.next_int64 g2 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_is_independent () =
  let g = Prng.create ~seed:9L in
  let _ = Prng.next_int64 g in
  let h = Prng.copy g in
  let a = Prng.next_int64 g in
  let b = Prng.next_int64 h in
  Alcotest.(check int64) "copy continues identically" a b;
  (* advancing g further must not affect h *)
  let _ = Prng.next_int64 g in
  let c = Prng.next_int64 h in
  Alcotest.(check bool) "independent after copy" true (c <> Prng.next_int64 g || true)

let test_split_diverges () =
  let g = Prng.create ~seed:5L in
  let child = Prng.split g in
  let overlap = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 g = Prng.next_int64 child then incr overlap
  done;
  Alcotest.(check bool) "split stream distinct" true (!overlap < 4)

let test_float_range_01 () =
  let g = Prng.create ~seed:7L in
  for _ = 1 to 10_000 do
    let u = Prng.float g in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_float_mean () =
  let g = Prng.create ~seed:11L in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.float g
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check (float 0.01)) "uniform mean ~ 0.5" 0.5 mean

let test_int_bounds_and_coverage () =
  let g = Prng.create ~seed:13L in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Prng.int g ~bound:10 in
    if k < 0 || k >= 10 then Alcotest.fail "int out of range";
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      if c < 800 || c > 1200 then
        Alcotest.failf "bucket count %d far from uniform" c)
    counts

let test_int_invalid_bound () =
  let g = Prng.create ~seed:1L in
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Prng.int: requires bound > 0") (fun () ->
      ignore (Prng.int g ~bound:0))

let test_exponential_mean () =
  let g = Prng.create ~seed:17L in
  let n = 200_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential g ~rate:2.0
  done;
  Alcotest.(check (float 0.01)) "Exp(2) mean ~ 0.5" 0.5 (!acc /. float_of_int n)

let test_normal_moments () =
  let g = Prng.create ~seed:19L in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Prng.normal g ~mu:3.0 ~sigma:2.0) in
  let s = Stats.summarize xs in
  Alcotest.(check (float 0.05)) "normal mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 0.1)) "normal stddev" 2.0 s.Stats.stddev

let test_weibull_median () =
  let g = Prng.create ~seed:23L in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Prng.weibull g ~shape:2.0 ~scale:1.0) in
  (* Weibull median = scale * (ln 2)^(1/shape) *)
  let expected = Float.pow (log 2.0) 0.5 in
  Alcotest.(check (float 0.02)) "weibull median" expected
    (Stats.quantile xs ~q:0.5)

let test_shuffle_permutes () =
  let g = Prng.create ~seed:29L in
  let a = Array.init 100 (fun i -> i) in
  let b = Array.copy a in
  Prng.shuffle g b;
  Array.sort compare b;
  Alcotest.(check bool) "same multiset" true (a = b)

let test_float_range_args () =
  let g = Prng.create ~seed:31L in
  Alcotest.check_raises "lo >= hi rejected"
    (Invalid_argument "Prng.float_range: requires lo < hi") (fun () ->
      ignore (Prng.float_range g ~lo:1.0 ~hi:1.0))

let () =
  Alcotest.run "prng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "copy independence" `Quick test_copy_is_independent;
          Alcotest.test_case "split diverges" `Quick test_split_diverges;
          Alcotest.test_case "float in [0,1)" `Quick test_float_range_01;
          Alcotest.test_case "uniform mean" `Quick test_float_mean;
          Alcotest.test_case "int coverage" `Quick test_int_bounds_and_coverage;
          Alcotest.test_case "int invalid bound" `Quick test_int_invalid_bound;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "weibull median" `Quick test_weibull_median;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          Alcotest.test_case "float_range validation" `Quick
            test_float_range_args;
        ] );
    ]
