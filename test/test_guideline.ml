let feq ?(eps = 1e-6) a b = Alcotest.(check (float eps)) "value" a b

(* --- the central reproduction claims ---------------------------------- *)

let test_guideline_matches_exact_uniform () =
  (* For uniform risk the guideline recurrence IS the optimal recurrence
     (§4.1), so the guideline must recover the exact optimal E. *)
  let c = 1.0 and l = 100.0 in
  let lf = Families.uniform ~lifespan:l in
  let g = Guideline.plan lf ~c in
  let exact = Exact.uniform ~c ~lifespan:l in
  feq ~eps:1e-6 exact.Exact.expected_work g.Guideline.expected_work;
  feq ~eps:1e-4 exact.Exact.t0 g.Guideline.t0

let test_guideline_matches_exact_geo_dec () =
  let a = exp 0.05 and c = 1.0 in
  let lf = Families.geometric_decreasing ~a in
  let g = Guideline.plan lf ~c in
  let exact = Exact.geometric_decreasing ~c ~a in
  feq ~eps:1e-6 exact.Exact.expected_work g.Guideline.expected_work;
  feq ~eps:1e-4 exact.Exact.t0 g.Guideline.t0

let test_guideline_geo_inc_at_least_exact_structure () =
  (* In continuous time the guideline recurrence (4.7) can slightly beat
     [3]'s ±1-perturbation recurrence; it must never fall below it by more
     than numerical noise. *)
  let c = 1.0 and l = 30.0 in
  let lf = Families.geometric_increasing ~lifespan:l in
  let g = Guideline.plan lf ~c in
  let exact = Exact.geometric_increasing ~c ~lifespan:l in
  Alcotest.(check bool) "guideline >= [3] structure" true
    (g.Guideline.expected_work >= exact.Exact.expected_work -. 1e-6)

let test_guideline_t0_inside_own_bracket () =
  List.iter
    (fun (name, lf) ->
      let g = Guideline.plan lf ~c:1.0 in
      let lo, hi = g.Guideline.bracket in
      Alcotest.(check bool) (name ^ " t0 in bracket") true
        (g.Guideline.t0 >= lo -. 1e-9 && g.Guideline.t0 <= hi +. 1e-9))
    (Families.all_paper_scenarios ~c:1.0)

let test_guideline_beats_naive_singleperiod () =
  List.iter
    (fun (name, lf) ->
      let g = Guideline.plan lf ~c:1.0 in
      let naive = Baselines.single_period lf ~c:1.0 in
      Alcotest.(check bool)
        (name ^ " beats single period")
        true
        (g.Guideline.expected_work >= naive.Baselines.expected_work -. 1e-9))
    (Families.all_paper_scenarios ~c:1.0)

let test_plan_with_t0 () =
  let lf = Families.uniform ~lifespan:100.0 in
  let r = Guideline.plan_with_t0 lf ~c:1.0 ~t0:15.0 in
  feq ~eps:0.0 15.0 r.Guideline.t0;
  feq ~eps:0.0 15.0 (Schedule.period r.Guideline.schedule 0);
  Alcotest.(check bool) "positive E" true (r.Guideline.expected_work > 0.0)

let test_plan_validation () =
  let lf = Families.uniform ~lifespan:10.0 in
  match Guideline.plan lf ~c:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = 0 accepted"

let test_schedule_is_productive () =
  List.iter
    (fun (name, lf) ->
      let g = Guideline.plan lf ~c:1.0 in
      Alcotest.(check bool) (name ^ " productive") true
        (Schedule.is_productive ~c:1.0 g.Guideline.schedule))
    (Families.all_paper_scenarios ~c:1.0)

(* --- risk-averse planning ---------------------------------------------- *)

let test_risk_averse_lambda_zero_matches_plan () =
  let lf = Families.uniform ~lifespan:100.0 in
  let a = Guideline.plan lf ~c:1.0 in
  let b = Guideline.plan_risk_averse ~lambda_:0.0 lf ~c:1.0 in
  Alcotest.(check (float 1e-6)) "same expected work" a.Guideline.expected_work
    b.Guideline.expected_work

let test_risk_averse_trades_mean_for_tail () =
  let lf = Families.uniform ~lifespan:100.0 in
  let c = 1.0 in
  let neutral = Guideline.plan_risk_averse ~lambda_:0.0 lf ~c in
  let averse = Guideline.plan_risk_averse ~lambda_:2.0 lf ~c in
  let law r = Work_distribution.of_schedule lf ~c r.Guideline.schedule in
  let dn = law neutral and da = law averse in
  Alcotest.(check bool) "mean can only drop" true
    (da.Work_distribution.mean <= dn.Work_distribution.mean +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "stddev shrinks (%.3f -> %.3f)" dn.Work_distribution.stddev
       da.Work_distribution.stddev)
    true
    (da.Work_distribution.stddev <= dn.Work_distribution.stddev +. 1e-9)

let test_risk_averse_validation () =
  let lf = Families.uniform ~lifespan:10.0 in
  match Guideline.plan_risk_averse ~lambda_:(-1.0) lf ~c:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative lambda accepted"

(* --- online / conditional scheduling (§6) ------------------------------ *)

let test_online_first_step_matches_plan () =
  (* At elapsed = 0 the conditional function is p itself, so the online
     step equals the plan's t0. *)
  let lf = Families.uniform ~lifespan:100.0 in
  let g = Guideline.plan lf ~c:1.0 in
  match Guideline.next_period_online lf ~c:1.0 ~elapsed:0.0 with
  | Some t -> feq ~eps:1e-3 g.Guideline.t0 t
  | None -> Alcotest.fail "expected a period at t = 0"

let test_online_memoryless_constant () =
  (* Exponential: the conditional problem is identical at every elapsed
     time, so the online period never changes. *)
  let lf = Families.geometric_decreasing ~a:(exp 0.1) in
  let p0 = Guideline.next_period_online lf ~c:1.0 ~elapsed:0.0 in
  let p7 = Guideline.next_period_online lf ~c:1.0 ~elapsed:7.0 in
  match (p0, p7) with
  | Some a, Some b -> feq ~eps:1e-3 a b
  | _ -> Alcotest.fail "expected periods at both times"

let test_online_shrinks_near_deadline () =
  let lf = Families.uniform ~lifespan:100.0 in
  let early = Guideline.next_period_online lf ~c:1.0 ~elapsed:0.0 in
  let late = Guideline.next_period_online lf ~c:1.0 ~elapsed:90.0 in
  match (early, late) with
  | Some e, Some l -> Alcotest.(check bool) "late period shorter" true (l < e)
  | _ -> Alcotest.fail "expected periods at both times"

let test_online_none_when_exhausted () =
  let lf = Families.uniform ~lifespan:100.0 in
  Alcotest.(check bool) "no period at the end of life" true
    (Guideline.next_period_online lf ~c:1.0 ~elapsed:99.5 = None)

let test_online_validation () =
  let lf = Families.uniform ~lifespan:10.0 in
  match Guideline.next_period_online lf ~c:1.0 ~elapsed:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative elapsed accepted"

(* --- properties -------------------------------------------------------- *)

let prop_guideline_within_2pct_of_optimizer =
  (* The headline reproduction claim: guideline-generated schedules land
     within a few percent of the independent numeric optimum. *)
  QCheck.Test.make ~name:"guideline E within 2% of brute-force optimum"
    ~count:8
    QCheck.(pair (float_range 0.5 2.0) (float_range 30.0 120.0))
    (fun (c, l) ->
      let lf = Families.uniform ~lifespan:l in
      let g = Guideline.plan lf ~c in
      let o = Optimizer.optimal_schedule lf ~c in
      g.Guideline.expected_work >= 0.98 *. o.Optimizer.expected_work)

let prop_guideline_t0_in_paper_bounds_uniform =
  QCheck.Test.make ~name:"guideline t0 within the §4.1 simplified bounds"
    ~count:25
    QCheck.(pair (float_range 0.5 2.0) (float_range 30.0 300.0))
    (fun (c, l) ->
      let lf = Families.uniform ~lifespan:l in
      let g = Guideline.plan lf ~c in
      g.Guideline.t0 >= Closed_forms.uniform_t0_lower ~c ~lifespan:l -. 1e-6
      && g.Guideline.t0
         <= Closed_forms.uniform_t0_upper ~c ~lifespan:l +. 1e-6)

let () =
  Alcotest.run "guideline"
    [
      ( "against-exact",
        [
          Alcotest.test_case "uniform matches exact" `Quick
            test_guideline_matches_exact_uniform;
          Alcotest.test_case "geo-dec matches exact" `Quick
            test_guideline_matches_exact_geo_dec;
          Alcotest.test_case "geo-inc >= [3] structure" `Quick
            test_guideline_geo_inc_at_least_exact_structure;
          QCheck_alcotest.to_alcotest prop_guideline_within_2pct_of_optimizer;
          QCheck_alcotest.to_alcotest prop_guideline_t0_in_paper_bounds_uniform;
        ] );
      ( "structure",
        [
          Alcotest.test_case "t0 inside bracket" `Quick
            test_guideline_t0_inside_own_bracket;
          Alcotest.test_case "beats single period" `Quick
            test_guideline_beats_naive_singleperiod;
          Alcotest.test_case "plan_with_t0" `Quick test_plan_with_t0;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "productive schedules" `Quick
            test_schedule_is_productive;
        ] );
      ( "risk-averse",
        [
          Alcotest.test_case "lambda 0 = plan" `Quick
            test_risk_averse_lambda_zero_matches_plan;
          Alcotest.test_case "trades mean for tail" `Quick
            test_risk_averse_trades_mean_for_tail;
          Alcotest.test_case "validation" `Quick test_risk_averse_validation;
        ] );
      ( "online",
        [
          Alcotest.test_case "first step = plan t0" `Quick
            test_online_first_step_matches_plan;
          Alcotest.test_case "memoryless constant" `Quick
            test_online_memoryless_constant;
          Alcotest.test_case "shrinks near deadline" `Quick
            test_online_shrinks_near_deadline;
          Alcotest.test_case "none when exhausted" `Quick
            test_online_none_when_exhausted;
          Alcotest.test_case "validation" `Quick test_online_validation;
        ] );
    ]
