let test_empty_queue () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check int) "size 0" 0 (Event_queue.size q);
  Alcotest.(check bool) "pop None" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek None" true (Event_queue.peek_time q = None)

let test_time_ordering () =
  let q = Event_queue.create () in
  List.iter
    (fun (t, v) -> Event_queue.push q ~time:t ~tie:0 v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (List.rev !order)

let test_tie_breaking () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5.0 ~tie:2 "owner-return";
  Event_queue.push q ~time:5.0 ~tie:0 "period-end";
  Event_queue.push q ~time:5.0 ~tie:1 "middle";
  let pop () =
    match Event_queue.pop q with Some (_, v) -> v | None -> "none"
  in
  Alcotest.(check string) "lowest tie first" "period-end" (pop ());
  Alcotest.(check string) "middle" "middle" (pop ());
  Alcotest.(check string) "highest last" "owner-return" (pop ())

let test_fifo_within_same_priority () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1.0 ~tie:0 "first";
  Event_queue.push q ~time:1.0 ~tie:0 "second";
  (match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "insertion order" "first" v
  | None -> Alcotest.fail "empty");
  match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "insertion order" "second" v
  | None -> Alcotest.fail "empty"

let test_peek_does_not_remove () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2.0 ~tie:0 ();
  Alcotest.(check bool) "peek time" true (Event_queue.peek_time q = Some 2.0);
  Alcotest.(check int) "still size 1" 1 (Event_queue.size q)

let test_interleaved_push_pop () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:10.0 ~tie:0 10;
  Event_queue.push q ~time:5.0 ~tie:0 5;
  (match Event_queue.pop q with
  | Some (t, 5) -> Alcotest.(check (float 0.0)) "t" 5.0 t
  | _ -> Alcotest.fail "expected 5");
  Event_queue.push q ~time:1.0 ~tie:0 1;
  (match Event_queue.pop q with
  | Some (_, 1) -> ()
  | _ -> Alcotest.fail "expected 1");
  match Event_queue.pop q with
  | Some (_, 10) -> ()
  | _ -> Alcotest.fail "expected 10"

let test_rejects_nonfinite_time () =
  let q = Event_queue.create () in
  match Event_queue.push q ~time:Float.nan ~tie:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN time accepted"

let test_growth_beyond_initial_capacity () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    Event_queue.push q ~time:(float_of_int i) ~tie:0 i
  done;
  Alcotest.(check int) "size" 1000 (Event_queue.size q);
  for i = 0 to 999 do
    match Event_queue.pop q with
    | Some (_, v) -> Alcotest.(check int) "heap order" i v
    | None -> Alcotest.fail "premature empty"
  done

let prop_pop_order_is_sorted =
  QCheck.Test.make ~name:"pop yields nondecreasing times" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 0.0 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ~tie:0 t) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_size_tracks_operations =
  QCheck.Test.make ~name:"size is consistent under push/pop" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0.0 10.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t ~tie:i ()) times;
      let n = List.length times in
      Event_queue.size q = n
      &&
      let rec drain k =
        match Event_queue.pop q with
        | None -> k = 0
        | Some _ -> Event_queue.size q = k - 1 && drain (k - 1)
      in
      drain n)

let () =
  Alcotest.run "event_queue"
    [
      ( "event_queue",
        [
          Alcotest.test_case "empty" `Quick test_empty_queue;
          Alcotest.test_case "time ordering" `Quick test_time_ordering;
          Alcotest.test_case "tie breaking" `Quick test_tie_breaking;
          Alcotest.test_case "FIFO same priority" `Quick
            test_fifo_within_same_priority;
          Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
          Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop;
          Alcotest.test_case "non-finite rejected" `Quick
            test_rejects_nonfinite_time;
          Alcotest.test_case "growth" `Quick
            test_growth_beyond_initial_capacity;
          QCheck_alcotest.to_alcotest prop_pop_order_is_sorted;
          QCheck_alcotest.to_alcotest prop_size_tracks_operations;
        ] );
    ]
