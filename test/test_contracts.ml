let c = 1.0
let lf = Families.uniform ~lifespan:100.0

let test_suspension_banks_inflight () =
  let s = Schedule.of_list [ 5.0; 4.0 ] in
  (* Kill at 7: draconian banks 4 (first period) and loses 1 (one
     productive unit of the second period, after its 1-long setup). *)
  let d = Episode.run s ~c ~reclaim_at:7.0 in
  let g = Contracts.run_with_suspension s ~c ~reclaim_at:7.0 in
  Alcotest.(check (float 1e-12)) "draconian" 4.0 d.Episode.work_done;
  Alcotest.(check (float 1e-12)) "suspended banks partial" 5.0
    g.Episode.work_done;
  Alcotest.(check (float 1e-12)) "nothing lost" 0.0 g.Episode.work_lost

let test_suspension_equals_draconian_when_uninterrupted () =
  let s = Schedule.of_list [ 5.0; 4.0 ] in
  let d = Episode.run s ~c ~reclaim_at:50.0 in
  let g = Contracts.run_with_suspension s ~c ~reclaim_at:50.0 in
  Alcotest.(check (float 1e-12)) "same when safe" d.Episode.work_done
    g.Episode.work_done

let test_expected_suspended_hand_computed () =
  (* Uniform L = 10, one period of length 10, c = 1:
     E_suspend = ∫_1^10 (1 - t/10) dt = 9 - (100-1)/20 = 4.05. *)
  let lf = Families.uniform ~lifespan:10.0 in
  let s = Schedule.of_list [ 10.0 ] in
  Alcotest.(check (float 1e-8)) "hand value" 4.05
    (Contracts.expected_work_suspended ~c lf s)

let test_expected_suspended_matches_monte_carlo () =
  let g = Guideline.plan lf ~c in
  let s = g.Guideline.schedule in
  let analytic = Contracts.expected_work_suspended ~c lf s in
  let sampler = Reclaim.create lf in
  let rng = Prng.create ~seed:17L in
  let n = 40_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let reclaim_at = Reclaim.draw sampler rng in
    acc :=
      !acc +. (Contracts.run_with_suspension s ~c ~reclaim_at).Episode.work_done
  done;
  let mc = !acc /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "MC %.3f ~ analytic %.3f" mc analytic)
    true
    (Float.abs (mc -. analytic) < 0.02 *. analytic)

let test_suspension_dominates_draconian () =
  (* Pointwise banking more implies E_suspend >= E_draconian. *)
  List.iter
    (fun (name, lf) ->
      let s = (Guideline.plan lf ~c).Guideline.schedule in
      Alcotest.(check bool) (name ^ ": suspend >= draconian") true
        (Contracts.expected_work_suspended ~c lf s
        >= Schedule.expected_work ~c lf s -. 1e-9))
    (Families.all_paper_scenarios ~c)

let test_single_period_optimal_under_suspension () =
  (* With nothing to lose, merging periods only saves setup cost: the
     single spanning period dominates any split. *)
  let single = Contracts.single_period_value ~c lf in
  List.iter
    (fun s ->
      Alcotest.(check bool) "single period dominates" true
        (single >= Contracts.expected_work_suspended ~c lf s -. 1e-9))
    [
      (Guideline.plan lf ~c).Guideline.schedule;
      Schedule.of_list [ 50.0; 50.0 ];
      Schedule.of_list [ 10.0; 20.0; 30.0; 40.0 ];
      Schedule.of_list [ 100.0 ];
    ]

let test_single_period_value_formula () =
  (* Uniform L: ∫_c^L (1 - t/L) = (L - c)^2 / (2L). *)
  let lf = Families.uniform ~lifespan:50.0 in
  Alcotest.(check (float 1e-8)) "closed form"
    (49.0 *. 49.0 /. 100.0)
    (Contracts.single_period_value ~c lf)

let test_price_of_draconia_positive () =
  (* The draconian optimum is strictly below the suspend optimum. *)
  List.iter
    (fun (name, lf) ->
      let draconian = (Guideline.plan lf ~c).Guideline.expected_work in
      let gentle = Contracts.single_period_value ~c lf in
      Alcotest.(check bool)
        (Printf.sprintf "%s: gentle %.3f > draconian %.3f" name gentle
           draconian)
        true (gentle > draconian))
    (Families.all_paper_scenarios ~c)

let test_validation () =
  (match Contracts.expected_work_suspended ~c:(-1.0) lf (Schedule.of_list [ 1.0 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative c accepted");
  match Contracts.single_period_value ~c:(-1.0) lf with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative c accepted"

let prop_suspend_outcome_conserves =
  QCheck.Test.make ~name:"suspend outcome = draconian done + lost" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 8) (float_range 0.5 10.0))
        (float_range 0.0 60.0))
    (fun (ts, reclaim_at) ->
      let s = Schedule.of_periods ts in
      let d = Episode.run s ~c ~reclaim_at in
      let g = Contracts.run_with_suspension s ~c ~reclaim_at in
      Float.abs
        (g.Episode.work_done -. (d.Episode.work_done +. d.Episode.work_lost))
      < 1e-9)

let prop_analytic_suspend_between_draconian_and_capacity =
  QCheck.Test.make
    ~name:"E_draconian <= E_suspend <= work capacity" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 10) (float_range 0.5 15.0))
    (fun ts ->
      let s = Schedule.of_periods ts in
      let e_d = Schedule.expected_work ~c lf s in
      let e_s = Contracts.expected_work_suspended ~c lf s in
      e_d <= e_s +. 1e-9 && e_s <= Schedule.work_capacity ~c s +. 1e-9)

let () =
  Alcotest.run "contracts"
    [
      ( "contracts",
        [
          Alcotest.test_case "suspension banks in-flight" `Quick
            test_suspension_banks_inflight;
          Alcotest.test_case "equal when uninterrupted" `Quick
            test_suspension_equals_draconian_when_uninterrupted;
          Alcotest.test_case "hand-computed expectation" `Quick
            test_expected_suspended_hand_computed;
          Alcotest.test_case "matches Monte Carlo" `Quick
            test_expected_suspended_matches_monte_carlo;
          Alcotest.test_case "suspend dominates draconian" `Quick
            test_suspension_dominates_draconian;
          Alcotest.test_case "single period optimal" `Quick
            test_single_period_optimal_under_suspension;
          Alcotest.test_case "single period formula" `Quick
            test_single_period_value_formula;
          Alcotest.test_case "price of draconia > 0" `Quick
            test_price_of_draconia_positive;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest prop_suspend_outcome_conserves;
          QCheck_alcotest.to_alcotest
            prop_analytic_suspend_between_draconian_and_capacity;
        ] );
    ]
