let feq eps a b = Alcotest.(check (float eps)) "value" a b

let test_w0_identity () =
  (* W0(x e^x) = x for x >= -1 *)
  List.iter
    (fun x ->
      let arg = x *. exp x in
      feq 1e-10 x (Special.lambert_w0 arg))
    [ -0.9; -0.5; 0.0; 0.5; 1.0; 2.0; 5.0 ]

let test_w0_known_values () =
  feq 1e-12 0.0 (Special.lambert_w0 0.0);
  (* W0(e) = 1 *)
  feq 1e-10 1.0 (Special.lambert_w0 (exp 1.0));
  (* W0(-1/e) = -1 *)
  feq 1e-4 (-1.0) (Special.lambert_w0 (-.exp (-1.0)))

let test_w0_domain () =
  match Special.lambert_w0 (-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument below -1/e"

let test_wm1_identity () =
  (* W-1(x e^x) = x for x <= -1 *)
  List.iter
    (fun x ->
      let arg = x *. exp x in
      feq 1e-8 x (Special.lambert_wm1 arg))
    [ -1.2; -2.0; -3.0; -5.0; -10.0 ]

let test_wm1_domain () =
  (match Special.lambert_wm1 0.1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for positive arg");
  match Special.lambert_wm1 (-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument below -1/e"

let test_w_branches_bracket () =
  (* For x in (-1/e, 0), W0(x) > -1 > W-1(x). *)
  let x = -0.1 in
  let w0 = Special.lambert_w0 x in
  let wm1 = Special.lambert_wm1 x in
  Alcotest.(check bool) "branch order" true (w0 > -1.0 && wm1 < -1.0);
  feq 1e-10 x (w0 *. exp w0);
  feq 1e-10 x (wm1 *. exp wm1)

let test_log2 () =
  feq 1e-12 10.0 (Special.log2 1024.0);
  feq 1e-12 0.0 (Special.log2 1.0);
  feq 1e-12 0.5 (Special.log2 (sqrt 2.0))

let test_logsumexp_basic () =
  (* log(e^0 + e^0) = log 2 *)
  feq 1e-12 (log 2.0) (Special.logsumexp [| 0.0; 0.0 |])

let test_logsumexp_overflow_safe () =
  (* Naive exp(1000) overflows; LSE must not. *)
  feq 1e-9 (1000.0 +. log 2.0) (Special.logsumexp [| 1000.0; 1000.0 |])

let test_logsumexp_dominant_term () =
  feq 1e-12 100.0 (Special.logsumexp [| 100.0; -1000.0 |])

let test_logsumexp_empty () =
  Alcotest.(check bool) "empty is -inf" true
    (Special.logsumexp [||] = neg_infinity)

let test_clamp () =
  feq 0.0 0.0 (Special.smooth_clamp01 (-0.5));
  feq 0.0 1.0 (Special.smooth_clamp01 1.5);
  feq 0.0 0.25 (Special.smooth_clamp01 0.25);
  feq 0.0 0.0 (Special.smooth_clamp01 Float.nan)

let prop_w0_inverse =
  QCheck.Test.make ~name:"W0 inverts w*e^w" ~count:300
    QCheck.(float_range (-0.99) 10.0)
    (fun w ->
      let x = w *. exp w in
      Float.abs (Special.lambert_w0 x -. w) < 1e-6 *. Float.max 1.0 (Float.abs w))

let () =
  Alcotest.run "special"
    [
      ( "special",
        [
          Alcotest.test_case "W0 identity" `Quick test_w0_identity;
          Alcotest.test_case "W0 known values" `Quick test_w0_known_values;
          Alcotest.test_case "W0 domain" `Quick test_w0_domain;
          Alcotest.test_case "W-1 identity" `Quick test_wm1_identity;
          Alcotest.test_case "W-1 domain" `Quick test_wm1_domain;
          Alcotest.test_case "branch bracketing" `Quick
            test_w_branches_bracket;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "logsumexp basic" `Quick test_logsumexp_basic;
          Alcotest.test_case "logsumexp overflow" `Quick
            test_logsumexp_overflow_safe;
          Alcotest.test_case "logsumexp dominant" `Quick
            test_logsumexp_dominant_term;
          Alcotest.test_case "logsumexp empty" `Quick test_logsumexp_empty;
          Alcotest.test_case "clamp01" `Quick test_clamp;
          QCheck_alcotest.to_alcotest prop_w0_inverse;
        ] );
    ]
