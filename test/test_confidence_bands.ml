(* Greenwood confidence bands on the survival estimate and robust
   scheduling against the lower band (experiment E16's machinery). *)

let observations model n seed =
  let rng = Prng.create ~seed in
  Array.init n (fun _ ->
      { Owner_model.duration = Owner_model.sample model rng; observed = true })

let test_greenwood_zero_at_no_censoring_start () =
  (* First event of n samples: S = 1 - 1/n, Var = S^2 * (1/(n(n-1))). *)
  let steps =
    Stats.kaplan_meier_greenwood [| (1.0, true); (2.0, true); (3.0, true) |]
  in
  let _, s, sd = steps.(0) in
  Alcotest.(check (float 1e-12)) "S after first event" (2.0 /. 3.0) s;
  let expected = (2.0 /. 3.0) *. sqrt (1.0 /. 6.0) in
  Alcotest.(check (float 1e-12)) "Greenwood sd" expected sd

let test_greenwood_variance_grows_along_curve () =
  let obs = observations (Owner_model.Exponential_absence { mean = 10.0 }) 200 1L in
  let steps =
    Stats.kaplan_meier_greenwood
      (Array.map (fun o -> (o.Owner_model.duration, o.Owner_model.observed)) obs)
  in
  (* Greenwood's cumulative sum makes the *relative* sd nondecreasing. *)
  let rel (_, s, sd) = if s > 0.0 then sd /. s else infinity in
  let n = Array.length steps in
  Alcotest.(check bool) "relative sd grows" true
    (rel steps.(n / 4) <= rel steps.(n / 2) +. 1e-12
    && rel steps.(n / 2) <= rel steps.(3 * n / 4) +. 1e-12)

let test_bands_ordered () =
  let obs = observations (Owner_model.Uniform_absence { max = 30.0 }) 150 2L in
  let b = Survival.confidence_bands obs in
  let hi = Life_function.horizon b.Survival.point in
  for i = 1 to 63 do
    let t = float_of_int i /. 64.0 *. hi in
    let l = Life_function.eval b.Survival.lower t in
    let p = Life_function.eval b.Survival.point t in
    let u = Life_function.eval b.Survival.upper t in
    if not (l <= p +. 0.02 && p <= u +. 0.02) then
      Alcotest.failf "bands out of order at t=%g: %g %g %g" t l p u
  done

let test_bands_are_valid_life_functions () =
  let obs = observations (Owner_model.Uniform_absence { max = 30.0 }) 80 3L in
  let b = Survival.confidence_bands obs in
  List.iter
    (fun lf ->
      Alcotest.(check bool)
        (Life_function.name lf ^ " monotone")
        true
        (Life_function.is_decreasing_on_grid lf))
    [ b.Survival.lower; b.Survival.point; b.Survival.upper ]

let test_bands_contain_truth_mostly () =
  let truth = Families.exponential ~rate:0.1 in
  let obs = observations (Owner_model.Exponential_absence { mean = 10.0 }) 400 4L in
  let b = Survival.confidence_bands ~z:1.96 obs in
  let hi = Life_function.quantile_time truth ~q:0.05 in
  let inside = ref 0 and total = ref 0 in
  for i = 1 to 50 do
    let t = float_of_int i /. 51.0 *. hi in
    incr total;
    let v = Life_function.eval truth t in
    if
      v >= Life_function.eval b.Survival.lower t -. 0.02
      && v <= Life_function.eval b.Survival.upper t +. 0.02
    then incr inside
  done;
  Alcotest.(check bool)
    (Printf.sprintf "truth inside bands at %d/%d probes" !inside !total)
    true
    (float_of_int !inside /. float_of_int !total >= 0.9)

let test_z_zero_collapses_bands () =
  let obs = observations (Owner_model.Uniform_absence { max = 20.0 }) 60 5L in
  let b = Survival.confidence_bands ~z:0.0 obs in
  let hi = Life_function.horizon b.Survival.point in
  for i = 1 to 20 do
    let t = float_of_int i /. 21.0 *. hi in
    Alcotest.(check (float 1e-9)) "lower = point"
      (Life_function.eval b.Survival.point t)
      (Life_function.eval b.Survival.lower t)
  done

let test_bands_validation () =
  (match Survival.confidence_bands [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted");
  let obs = observations (Owner_model.Uniform_absence { max = 5.0 }) 10 6L in
  match Survival.confidence_bands ~z:(-1.0) obs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative z accepted"

let test_lower_band_plans_pessimistically () =
  (* Pointwise lower survival lowers E(S) for every schedule, hence also
     the maximised planner value: the pessimistic plan promises less. *)
  let obs = observations (Owner_model.Uniform_absence { max = 60.0 }) 60 7L in
  let b = Survival.confidence_bands obs in
  let c = 1.0 in
  let plan_lower = Guideline.plan b.Survival.lower ~c in
  let plan_point = Guideline.plan b.Survival.point ~c in
  Alcotest.(check bool) "lower-band value <= point value" true
    (plan_lower.Guideline.expected_work
    <= plan_point.Guideline.expected_work +. 1e-6)

let prop_bands_widen_with_z =
  QCheck.Test.make ~name:"larger z gives a lower lower-band" ~count:10
    QCheck.(int_range 30 200)
    (fun n ->
      let obs =
        observations (Owner_model.Exponential_absence { mean = 8.0 }) n
          (Int64.of_int (n * 13))
      in
      let b1 = Survival.confidence_bands ~z:1.0 obs in
      let b3 = Survival.confidence_bands ~z:3.0 obs in
      let hi = 0.8 *. Life_function.horizon b1.Survival.point in
      let ok = ref true in
      for i = 1 to 20 do
        let t = float_of_int i /. 21.0 *. hi in
        if
          Life_function.eval b3.Survival.lower t
          > Life_function.eval b1.Survival.lower t +. 0.03
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "confidence_bands"
    [
      ( "confidence_bands",
        [
          Alcotest.test_case "Greenwood first event" `Quick
            test_greenwood_zero_at_no_censoring_start;
          Alcotest.test_case "relative sd grows" `Quick
            test_greenwood_variance_grows_along_curve;
          Alcotest.test_case "bands ordered" `Quick test_bands_ordered;
          Alcotest.test_case "bands valid life functions" `Quick
            test_bands_are_valid_life_functions;
          Alcotest.test_case "bands contain truth" `Quick
            test_bands_contain_truth_mostly;
          Alcotest.test_case "z = 0 collapses" `Quick
            test_z_zero_collapses_bands;
          Alcotest.test_case "validation" `Quick test_bands_validation;
          Alcotest.test_case "lower band pessimistic value" `Quick
            test_lower_band_plans_pessimistically;
          QCheck_alcotest.to_alcotest prop_bands_widen_with_z;
        ] );
    ]
