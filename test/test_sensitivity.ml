let c = 1.0
let lf = Families.uniform ~lifespan:100.0

let find_factor pts f =
  List.find (fun p -> Float.abs (p.Sensitivity.perturbation -. f) < 1e-9) pts

let test_exact_c_is_lossless () =
  let pts = Sensitivity.c_misspecification lf ~c in
  let p = find_factor pts 1.0 in
  Alcotest.(check (float 1e-9)) "factor 1 lossless" 1.0 p.Sensitivity.efficiency

let test_efficiency_bounded_by_one () =
  let pts = Sensitivity.c_misspecification lf ~c in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "factor %.2f efficiency %.4f <= 1" p.Sensitivity.perturbation
           p.Sensitivity.efficiency)
        true
        (p.Sensitivity.efficiency <= 1.0 +. 1e-9))
    pts

let test_graceful_degradation () =
  (* The value function is flat near the optimum, so 25% error in c should
     cost little; 4x error should cost visibly more. *)
  let pts = Sensitivity.c_misspecification lf ~c in
  let e125 = (find_factor pts 1.25).Sensitivity.efficiency in
  let e4 = (find_factor pts 4.0).Sensitivity.efficiency in
  Alcotest.(check bool) "25% error cheap" true (e125 > 0.99);
  Alcotest.(check bool) "4x error worse than 25%" true (e4 <= e125)

let test_planned_with_recorded () =
  let pts = Sensitivity.c_misspecification lf ~c:2.0 in
  let p = find_factor pts 0.5 in
  Alcotest.(check (float 1e-12)) "planned c" 1.0 p.Sensitivity.planned_with

let test_infeasible_factors_skipped () =
  (* c' = 4 * 30 = 120 >= horizon 100: skipped. *)
  let pts = Sensitivity.c_misspecification lf ~c:30.0 in
  Alcotest.(check bool) "factor 4 absent" true
    (List.for_all (fun p -> p.Sensitivity.perturbation < 4.0) pts)

let test_validation () =
  match Sensitivity.c_misspecification lf ~c:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = 0 accepted"

let test_lifespan_exact_lossless () =
  let pts = Sensitivity.lifespan_misspecification ~lifespan:100.0 c in
  let p = find_factor pts 1.0 in
  Alcotest.(check (float 1e-9)) "factor 1 lossless" 1.0 p.Sensitivity.efficiency

let test_lifespan_underestimate_hurts_more () =
  (* Believing the owner returns 4x sooner means the planner stops
     scheduling after a quarter of the true window and forfeits the rest;
     overestimating merely yields over-long periods that sometimes get
     killed. Measured: ~0.39 vs ~0.88 efficiency. *)
  let pts = Sensitivity.lifespan_misspecification ~lifespan:100.0 c in
  let over = (find_factor pts 4.0).Sensitivity.efficiency in
  let under = (find_factor pts 0.25).Sensitivity.efficiency in
  Alcotest.(check bool)
    (Printf.sprintf "underestimate (%.3f) worse than overestimate (%.3f)"
       under over)
    true
    (under < over);
  Alcotest.(check bool) "both lossy" true (under < 0.99 && over < 0.99)

let test_lifespan_validation () =
  match Sensitivity.lifespan_misspecification ~lifespan:1.0 2.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c >= lifespan accepted"

let prop_efficiency_in_unit_interval =
  QCheck.Test.make ~name:"sensitivity efficiencies lie in [0, 1]" ~count:15
    QCheck.(pair (float_range 0.5 3.0) (float_range 30.0 200.0))
    (fun (c, l) ->
      let lf = Families.polynomial ~d:2 ~lifespan:l in
      List.for_all
        (fun p ->
          p.Sensitivity.efficiency >= -1e-9
          && p.Sensitivity.efficiency <= 1.0 +. 1e-9)
        (Sensitivity.c_misspecification lf ~c))

let () =
  Alcotest.run "sensitivity"
    [
      ( "sensitivity",
        [
          Alcotest.test_case "exact c lossless" `Quick test_exact_c_is_lossless;
          Alcotest.test_case "efficiency <= 1" `Quick
            test_efficiency_bounded_by_one;
          Alcotest.test_case "graceful degradation" `Quick
            test_graceful_degradation;
          Alcotest.test_case "planned_with recorded" `Quick
            test_planned_with_recorded;
          Alcotest.test_case "infeasible skipped" `Quick
            test_infeasible_factors_skipped;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "lifespan exact lossless" `Quick
            test_lifespan_exact_lossless;
          Alcotest.test_case "underestimate hurts more" `Quick
            test_lifespan_underestimate_hurts_more;
          Alcotest.test_case "lifespan validation" `Quick
            test_lifespan_validation;
          QCheck_alcotest.to_alcotest prop_efficiency_in_unit_interval;
        ] );
    ]
