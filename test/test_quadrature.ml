let feq eps a b = Alcotest.(check (float eps)) "integral" a b

let test_simpson_polynomial_exact () =
  (* Simpson is exact for cubics: ∫0..2 x^3 = 4. *)
  feq 1e-12 4.0 (Quadrature.simpson (fun x -> x ** 3.0) ~lo:0.0 ~hi:2.0 ~n:2)

let test_simpson_sin () =
  feq 1e-8 2.0 (Quadrature.simpson sin ~lo:0.0 ~hi:Float.pi ~n:200)

let test_simpson_odd_n_rounded () =
  (* n = 3 is rounded to 4 internally; the n = 4 composite value of
     2.00456 must come out, well inside O(h^4). *)
  feq 1e-2 2.0 (Quadrature.simpson sin ~lo:0.0 ~hi:Float.pi ~n:3)

let test_simpson_validation () =
  Alcotest.check_raises "n >= 2"
    (Invalid_argument "Quadrature.simpson: n must be >= 2") (fun () ->
      ignore (Quadrature.simpson sin ~lo:0.0 ~hi:1.0 ~n:1))

let test_adaptive_smooth () =
  feq 1e-9 (exp 1.0 -. 1.0) (Quadrature.adaptive_simpson exp ~lo:0.0 ~hi:1.0)

let test_adaptive_peaked () =
  (* Narrow Gaussian: adaptive must find the mass near 0.5.
     ∫ exp(-((x-0.5)/0.01)^2) dx = 0.01 * sqrt(pi) over the real line. *)
  let f x = exp (-.(((x -. 0.5) /. 0.01) ** 2.0)) in
  feq 1e-8
    (0.01 *. sqrt Float.pi)
    (Quadrature.adaptive_simpson ~tol:1e-12 f ~lo:0.0 ~hi:1.0)

let test_gauss_legendre_orders () =
  (* Each order n is exact for degree 2n-1 polynomials. *)
  List.iter
    (fun order ->
      let deg = (2 * order) - 1 in
      let f x = x ** float_of_int deg in
      let expected = 1.0 /. (float_of_int deg +. 1.0) in
      feq 1e-10 expected (Quadrature.gauss_legendre f ~lo:0.0 ~hi:1.0 ~order))
    [ 2; 3; 4; 5; 6; 7; 8 ]

let test_gauss_legendre_bad_order () =
  match Quadrature.gauss_legendre sin ~lo:0.0 ~hi:1.0 ~order:9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_integrate_to_infinity_exponential () =
  (* ∫0..inf e^-2t = 0.5 *)
  feq 1e-8 0.5 (Quadrature.integrate_to_infinity (fun t -> exp (-2.0 *. t)) ~lo:0.0)

let test_integrate_to_infinity_shifted () =
  (* ∫1..inf e^-t = e^-1 *)
  feq 1e-8 (exp (-1.0))
    (Quadrature.integrate_to_infinity (fun t -> exp (-.t)) ~lo:1.0)

let test_mean_lifetime_identity () =
  (* For Exp(rate), ∫ p = 1/rate: cross-module identity with Life_function. *)
  let lf = Families.exponential ~rate:0.25 in
  feq 1e-6 4.0 (Life_function.mean_lifetime lf)

let test_mean_lifetime_uniform () =
  (* For uniform lifespan L, ∫ (1 - t/L) = L/2. *)
  let lf = Families.uniform ~lifespan:10.0 in
  feq 1e-8 5.0 (Life_function.mean_lifetime lf)

let prop_adaptive_matches_simpson =
  QCheck.Test.make ~name:"adaptive matches composite simpson on smooth f"
    ~count:100
    QCheck.(pair (float_range 0.2 3.0) (float_range 0.0 2.0))
    (fun (k, phase) ->
      let f x = sin ((k *. x) +. phase) +. (2.0 *. cos (x /. (k +. 1.0))) in
      let a = Quadrature.adaptive_simpson f ~lo:0.0 ~hi:3.0 in
      let s = Quadrature.simpson f ~lo:0.0 ~hi:3.0 ~n:2000 in
      Float.abs (a -. s) < 1e-6)

let () =
  Alcotest.run "quadrature"
    [
      ( "quadrature",
        [
          Alcotest.test_case "simpson cubic exact" `Quick
            test_simpson_polynomial_exact;
          Alcotest.test_case "simpson sin" `Quick test_simpson_sin;
          Alcotest.test_case "simpson odd n" `Quick test_simpson_odd_n_rounded;
          Alcotest.test_case "simpson validation" `Quick
            test_simpson_validation;
          Alcotest.test_case "adaptive smooth" `Quick test_adaptive_smooth;
          Alcotest.test_case "adaptive peaked" `Quick test_adaptive_peaked;
          Alcotest.test_case "gauss-legendre orders" `Quick
            test_gauss_legendre_orders;
          Alcotest.test_case "gauss-legendre bad order" `Quick
            test_gauss_legendre_bad_order;
          Alcotest.test_case "to infinity exponential" `Quick
            test_integrate_to_infinity_exponential;
          Alcotest.test_case "to infinity shifted" `Quick
            test_integrate_to_infinity_shifted;
          Alcotest.test_case "mean lifetime exp" `Quick
            test_mean_lifetime_identity;
          Alcotest.test_case "mean lifetime uniform" `Quick
            test_mean_lifetime_uniform;
          QCheck_alcotest.to_alcotest prop_adaptive_matches_simpson;
        ] );
    ]
