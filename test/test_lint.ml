(* cslint rule fixtures: each rule gets a positive case, a suppressed
   case, and a clean case, asserted on exact finding counts and
   locations. Fixtures are inline strings fed through
   Lint_engine.lint_source, so the tests exercise the same parse +
   iterate + suppress pipeline as the CLI without touching the
   filesystem. *)

let lint ?(path = "lib/fixture.ml") src =
  match Lint_engine.lint_source ~path src with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let rules (r : Lint_engine.report) =
  List.map (fun (f : Lint_finding.t) -> f.rule) r.findings

let check_rules name expected r =
  Alcotest.(check (list string)) name expected (rules r)

(* ---- R1: polymorphic comparison with float operands ---- *)

let test_r1_literal () =
  let r = lint "let f x = x = 1.0\n" in
  check_rules "literal rhs" [ "R1" ] r;
  let f = List.hd r.findings in
  Alcotest.(check int) "line" 1 f.Lint_finding.line;
  Alcotest.(check int) "col" 10 f.Lint_finding.col

let test_r1_arith_and_compare () =
  let r =
    lint "let f a b c = (a +. b) <> c\nlet g x = compare (x /. 2.0) 1\n"
  in
  check_rules "arith operands" [ "R1"; "R1" ] r

let test_r1_clean_and_suppressed () =
  check_rules "int = is fine" []
    (lint "let f x = x = 1\nlet g a b = Tol.equal a b\n");
  (* An ordering comparison on floats is not R1's business. *)
  check_rules "ordering is fine" [] (lint "let f x = x <= 1.0\n");
  let r = lint "let f x = (x = 1.0) [@lint.allow \"R1\"]\n" in
  check_rules "suppressed" [] r;
  Alcotest.(check int) "counted" 1 r.suppressed

(* ---- R2: naive float accumulation (lib/ and bench/ only) ---- *)

let test_r2_fold () =
  check_rules "List.fold_left" [ "R2" ]
    (lint "let s xs = List.fold_left ( +. ) 0.0 xs\n");
  check_rules "Array.fold_left" [ "R2" ]
    (lint ~path:"bench/fixture.ml" "let s a = Array.fold_left ( +. ) 0.0 a\n");
  (* A non-float fold is fine; so is a fold with a custom combiner. *)
  check_rules "int fold" [] (lint "let s xs = List.fold_left ( + ) 0 xs\n");
  check_rules "combiner" []
    (lint "let s xs = List.fold_left (fun a x -> a +. exp x) 0.0 xs\n")

let test_r2_ref_accumulation () =
  let src =
    "let s xs =\n\
    \  let acc = ref 0.0 in\n\
    \  List.iter (fun x -> acc := !acc +. x) xs;\n\
    \  !acc\n"
  in
  let r = lint src in
  check_rules "ref accumulation" [ "R2" ] r;
  Alcotest.(check int) "line" 3 (List.hd r.findings).Lint_finding.line;
  (* Flipped operand order still counts; -. does not (not accumulation). *)
  check_rules "flipped" [ "R2" ]
    (lint "let f a x = a := x +. !a\n");
  check_rules "subtraction" [] (lint "let f a x = a := !a -. x\n");
  (* Accumulating into a different ref than the one dereferenced is a
     plain assignment, not the accumulation idiom. *)
  check_rules "different ref" [] (lint "let f a b x = a := !b +. x\n")

let test_r2_scope_and_suppression () =
  let src = "let s xs = List.fold_left ( +. ) 0.0 xs\n" in
  check_rules "examples exempt" [] (lint ~path:"examples/fixture.ml" src);
  check_rules "bin exempt" [] (lint ~path:"bin/fixture.ml" src);
  let r =
    lint
      "let f a x = (a := !a +. x) [@lint.allow \"R2\"]\nlet g a x = a := !a +. x\n"
  in
  check_rules "one suppressed one not" [ "R2" ] r;
  Alcotest.(check int) "line of live finding" 2
    (List.hd r.findings).Lint_finding.line

(* ---- R3: stdlib Random ---- *)

let test_r3 () =
  check_rules "value use" [ "R3" ] (lint "let r () = Random.float 1.0\n");
  check_rules "submodule" [ "R3" ]
    (lint "let r st = Random.State.float st 1.0\n");
  check_rules "open" [ "R3" ] (lint "open Random\n");
  check_rules "prng.ml exempt" []
    (lint ~path:"lib/numerics/prng.ml" "let r () = Random.float 1.0\n");
  check_rules "file-wide allow" []
    (lint "[@@@lint.allow \"R3\"]\nlet r () = Random.bool ()\n")

(* ---- R4: printing from lib/ ---- *)

let test_r4 () =
  check_rules "print_endline" [ "R4" ] (lint "let p () = print_endline \"x\"\n");
  check_rules "Printf.printf" [ "R4" ]
    (lint "let p n = Printf.printf \"%d\" n\n");
  check_rules "sprintf fine" []
    (lint "let p n = Printf.sprintf \"%d\" n\n");
  check_rules "bin exempt" []
    (lint ~path:"bin/fixture.ml" "let p () = print_endline \"x\"\n")

(* ---- R5: .mli pairing, both directions ---- *)

let test_r5 () =
  let fs =
    Lint_engine.missing_mli_findings
      [ "lib/a.ml"; "lib/b.ml"; "lib/b.mli"; "bin/c.ml"; "lib/dune" ]
  in
  Alcotest.(check (list string))
    "only unpaired lib ml" [ "R5" ]
    (List.map (fun (f : Lint_finding.t) -> f.rule) fs);
  Alcotest.(check string) "file" "lib/a.ml" (List.hd fs).Lint_finding.file

let test_r5_orphan_mli () =
  let fs =
    Lint_engine.missing_mli_findings
      [ "lib/gone.mli"; "lib/b.ml"; "lib/b.mli"; "bin/c.mli" ]
  in
  Alcotest.(check (list string))
    "orphan lib mli" [ "R5" ]
    (List.map (fun (f : Lint_finding.t) -> f.rule) fs);
  let f = List.hd fs in
  Alcotest.(check string) "file" "lib/gone.mli" f.Lint_finding.file;
  Alcotest.(check bool) "says orphan" true
    (String.length f.Lint_finding.message >= 6
    && String.sub f.Lint_finding.message 0 6 = "orphan")

(* ---- interfaces are linted, not skipped ---- *)

let test_mli_rules () =
  check_rules "Random alias in mli" [ "R3" ]
    (lint ~path:"lib/fixture.mli" "module R = Random\n");
  check_rules "open Random in mli" [ "R3" ]
    (lint ~path:"lib/fixture.mli" "open Random\n");
  check_rules "prng.mli exempt" []
    (lint ~path:"lib/numerics/prng.mli" "module R = Random\n");
  check_rules "plain mli clean" []
    (lint ~path:"lib/fixture.mli" "val f : float -> float\n");
  (* File-wide allows parse and suppress in interfaces too. *)
  let r =
    lint ~path:"lib/fixture.mli"
      "[@@@lint.allow \"R3\"]\nmodule R = Random\n"
  in
  check_rules "mli file-wide allow" [] r;
  Alcotest.(check int) "counted" 1 r.suppressed

(* ---- R6: Obj.magic / Obj.repr ---- *)

let test_r6 () =
  check_rules "magic" [ "R6" ] (lint "let c x = Obj.magic x\n");
  check_rules "repr" [ "R6" ] (lint "let c x = Obj.repr x\n");
  check_rules "benign Obj fine" [] (lint "let t x = Obj.tag x\n");
  check_rules "suppressed" []
    (lint "let c x = (Obj.magic x) [@lint.allow \"R6\"]\n")

(* ---- R7: raw Domain.spawn outside lib/parallel/ ---- *)

let test_r7 () =
  check_rules "spawn in lib" [ "R7" ]
    (lint "let d f = Domain.spawn f\n");
  check_rules "spawn in bin" [ "R7" ]
    (lint ~path:"bin/fixture.ml" "let d f = Domain.spawn f\n");
  check_rules "lib/parallel exempt" []
    (lint ~path:"lib/parallel/domain_pool.ml" "let d f = Domain.spawn f\n");
  (* The rest of the Domain API is fine anywhere — only spawn creates
     execution contexts the pool can't account for. *)
  check_rules "join fine" [] (lint "let j d = Domain.join d\n");
  check_rules "suppressed" []
    (lint "let d f = (Domain.spawn f) [@lint.allow \"R7\"]\n")

(* ---- R8: wall-clock reads outside lib/obs/obs_clock.ml ---- *)

let test_r8 () =
  check_rules "gettimeofday in lib" [ "R8" ]
    (lint "let now () = Unix.gettimeofday ()\n");
  check_rules "Unix.time in bin" [ "R8" ]
    (lint ~path:"bin/fixture.ml" "let now () = Unix.time ()\n");
  check_rules "Sys.time in lib" [ "R8" ]
    (lint "let cpu () = Sys.time ()\n");
  check_rules "obs_clock exempt" []
    (lint ~path:"lib/obs/obs_clock.ml" "let now () = Unix.gettimeofday ()\n");
  (* The rest of Unix/Sys stays available — only the clocks are fenced. *)
  check_rules "other Unix fine" [] (lint "let pid () = Unix.getpid ()\n");
  check_rules "Sys.argv fine" [] (lint "let argv () = Sys.argv\n");
  check_rules "suppressed" []
    (lint "let now () = (Unix.time () [@lint.allow \"R8\"])\n")

let test_r9 () =
  check_rules "Gc.stat in lib" [ "R9" ]
    (lint "let words () = (Gc.stat ()).Gc.heap_words\n");
  check_rules "Gc.quick_stat in bin" [ "R9" ]
    (lint ~path:"bin/fixture.ml"
       "let minor () = (Gc.quick_stat ()).Gc.minor_words\n");
  check_rules "Gc.counters in lib" [ "R9" ]
    (lint "let c () = Gc.counters ()\n");
  check_rules "obs_resource exempt" []
    (lint ~path:"lib/obs/obs_resource.ml"
       "let words () = (Gc.quick_stat ()).Gc.minor_words\n");
  (* The rest of Gc stays available — only the stats probes are fenced. *)
  check_rules "Gc.compact fine" [] (lint "let go () = Gc.compact ()\n");
  check_rules "Gc.full_major fine" []
    (lint "let go () = Gc.full_major ()\n");
  check_rules "suppressed" []
    (lint "let s () = (Gc.quick_stat () [@lint.allow \"R9\"])\n")

(* ---- R13: socket I/O outside the lib/obs transport modules ---- *)

let test_r13 () =
  check_rules "socket in lib" [ "R13" ]
    (lint "let s () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n");
  check_rules "accept in bin" [ "R13" ]
    (lint ~path:"bin/fixture.ml" "let a fd = Unix.accept fd\n");
  check_rules "bind in bench" [ "R13" ]
    (lint ~path:"bench/fixture.ml" "let b fd sa = Unix.bind fd sa\n");
  check_rules "connect in lib" [ "R13" ]
    (lint "let c fd sa = Unix.connect fd sa\n");
  check_rules "obs_http exempt" []
    (lint ~path:"lib/obs/obs_http.ml"
       "let s () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n");
  check_rules "obs_stream exempt" []
    (lint ~path:"lib/obs/obs_stream.ml"
       "let s () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n");
  check_rules "obs_remote exempt" []
    (lint ~path:"lib/obs/obs_remote.ml"
       "let c fd sa = Unix.connect fd sa\n");
  check_rules "obs_collect exempt" []
    (lint ~path:"lib/obs/obs_collect.ml" "let a fd = Unix.accept fd\n");
  (* Only the four transport modules are exempt, not all of lib/obs. *)
  check_rules "other obs module still fenced" [ "R13" ]
    (lint ~path:"lib/obs/obs_sink.ml"
       "let s () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n");
  (* The rest of Unix stays available — only the socket surface is
     fenced, and a bare [shutdown] is not Unix.shutdown. *)
  check_rules "Unix.read fine" []
    (lint "let r fd b = Unix.read fd b 0 1\n");
  check_rules "local shutdown fine" []
    (lint "let shutdown () = ()\nlet s = shutdown ()\n");
  check_rules "suppressed" []
    (lint
       "let s () = (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0) \
        [@lint.allow \"R13\"]\n")

(* ---- R14: memo/cache state confined to lib/plancache ---- *)

let test_r14 () =
  let sched = "lib/sched/fixture.ml" in
  check_rules "toplevel Hashtbl in sched" [ "R14" ]
    (lint ~path:sched "let memo = Hashtbl.create 16\n");
  check_rules "toplevel Hashtbl.of_seq in sched" [ "R14" ]
    (lint ~path:sched "let memo = Hashtbl.of_seq Seq.empty\n");
  check_rules "toplevel Atomic in sched" [ "R14" ]
    (lint ~path:sched "let gen = Atomic.make 0\n");
  check_rules "toplevel ref in sched" [ "R14" ]
    (lint ~path:sched "let last = ref None\n");
  (* The allocation can hide under static structure... *)
  check_rules "tupled cache" [ "R14"; "R14" ]
    (lint ~path:sched "let caches = (Hashtbl.create 4, Hashtbl.create 4)\n");
  check_rules "let-bound then returned" [ "R14" ]
    (lint ~path:sched "let memo = let h = Hashtbl.create 4 in h\n");
  check_rules "nested module" [ "R14" ]
    (lint ~path:sched
       "module Cache = struct let table = Hashtbl.create 8 end\n");
  (* ...but per-call state inside a function body is not module state. *)
  check_rules "function-local Hashtbl fine" []
    (lint ~path:sched
       "let f xs = let h = Hashtbl.create 16 in List.iter (fun x -> \
        Hashtbl.replace h x x) xs; h\n");
  check_rules "function-local ref fine" []
    (lint ~path:sched "let count xs = let n = ref 0 in List.iter (fun _ -> \
                       incr n) xs; !n\n");
  (* Scoped to lib/sched: the same binding is legal where state is the
     point (lib/plancache) or outside the planning core entirely. *)
  check_rules "plancache exempt" []
    (lint ~path:"lib/plancache/fixture.ml" "let memo = Hashtbl.create 16\n");
  check_rules "other lib dirs exempt" []
    (lint ~path:"lib/obs/fixture.ml" "let memo = Hashtbl.create 16\n");
  check_rules "bin exempt" []
    (lint ~path:"bin/fixture.ml" "let memo = Hashtbl.create 16\n");
  check_rules "suppressed" []
    (lint ~path:sched
       "let memo = (Hashtbl.create 16 [@lint.allow \"R14\"])\n")

(* ---- malformed suppression payloads, parse errors, baseline ---- *)

let test_malformed_allow () =
  let r = lint "let f x = (x = 1.0) [@lint.allow]\n" in
  (* The R1 finding survives and the bad attribute is itself reported. *)
  Alcotest.(check (list string))
    "E1 plus live R1" [ "E1"; "R1" ]
    (List.sort_uniq String.compare (rules r))

let test_parse_error () =
  match Lint_engine.lint_source ~path:"lib/bad.ml" "let let let\n" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e ->
      Alcotest.(check bool) "names the file" true
        (String.length e > 0
        && String.sub e 0 (min 10 (String.length e)) = "lib/bad.ml")

let test_baseline_roundtrip () =
  let f rule file line =
    { Lint_finding.rule; file; line; col = 0; message = "m" }
  in
  let findings = [ f "R1" "lib/a.ml" 3; f "R2" "lib/b.ml" 7 ] in
  let path = Filename.temp_file "cslint" ".baseline" in
  Lint_baseline.save path findings;
  (match Lint_baseline.load path with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      let fresh, baselined = Lint_baseline.apply entries findings in
      Alcotest.(check int) "all baselined" 2 baselined;
      Alcotest.(check int) "none fresh" 0 (List.length fresh);
      let fresh, _ = Lint_baseline.apply entries (f "R1" "lib/a.ml" 9 :: findings) in
      Alcotest.(check int) "moved finding is fresh" 1 (List.length fresh));
  Sys.remove path

(* ---- M1: stale suppressions ---- *)

let test_m1_unused_allow () =
  (* The comparison is on ints, so the R1 allow suppresses nothing. *)
  let r = lint "let f x = (x = 1) [@lint.allow \"R1\"]\n" in
  check_rules "stale allow reported" [ "M1" ] r;
  Alcotest.(check int) "nothing suppressed" 0 r.suppressed;
  (* A used allow is not stale. *)
  check_rules "used allow silent" []
    (lint "let f x = (x = 1.0) [@lint.allow \"R1\"]\n");
  (* Allows naming deep-only rules are out of scope for a shallow run:
     lint_source never evaluates R10-R12, so it cannot call them stale. *)
  check_rules "deep-rule allow not stale in shallow run" []
    (lint "let f x = x [@lint.allow \"R11\"]\n")

(* ---- deep pass: call graph, effect fixpoint, R10/R11 ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let parse_impl path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let infer files =
  Lint_effects.infer
    (Lint_callgraph.build
       (List.map (fun (p, s) -> (p, parse_impl p s)) files))

let has_effect table ~mdl ~binding e =
  Lint_effect.mem e (Lint_effects.effects table ~mdl ~binding)

let test_fixpoint_mutual_recursion () =
  let table =
    infer
      [
        ( "lib/fix.ml",
          "let rec even n = if n = 0 then stamp () > 0.0 else odd (n - 1)\n\
           and odd n = if n = 0 then false else even (n - 1)\n\
           and stamp () = Unix.gettimeofday ()\n" );
      ]
  in
  Alcotest.(check bool) "stamp has clock" true
    (has_effect table ~mdl:"Fix" ~binding:"stamp" Lint_effect.Clock);
  Alcotest.(check bool) "even absorbs clock" true
    (has_effect table ~mdl:"Fix" ~binding:"even" Lint_effect.Clock);
  Alcotest.(check bool) "odd absorbs clock through even" true
    (has_effect table ~mdl:"Fix" ~binding:"odd" Lint_effect.Clock);
  let w = Lint_effects.witness table ~mdl:"Fix" ~binding:"odd" Lint_effect.Clock in
  Alcotest.(check bool) "witness names the primitive" true
    (contains w "Unix.gettimeofday")

let test_higher_order_propagation () =
  let table =
    infer
      [
        ( "lib/ho.ml",
          "let tick () = Unix.gettimeofday ()\n\
           let stamp_all xs = List.map tick xs\n\
           let pure_all xs = List.map (fun x -> x + 1) xs\n" );
      ]
  in
  (* Passing an effectful function to List.map taints the caller: every
     referenced value path is an edge, not just application heads. *)
  Alcotest.(check bool) "List.map tick taints" true
    (has_effect table ~mdl:"Ho" ~binding:"stamp_all" Lint_effect.Clock);
  Alcotest.(check bool) "pure map stays pure" true
    (Lint_effect.is_empty
       (Lint_effects.effects table ~mdl:"Ho" ~binding:"pure_all"))

let test_unknown_callee_taint () =
  let table =
    infer
      [
        ( "lib/fc.ml",
          "module M = Mystery (Unit)\n\
           let go x = M.run x\n\
           module S = Map.Make (String)\n\
           let tidy m = S.cardinal m\n" );
      ]
  in
  (* A functor application the analysis cannot see through taints the
     caller with Unknown; a whitelisted-stdlib functor does not. *)
  Alcotest.(check bool) "opaque functor taints" true
    (has_effect table ~mdl:"Fc" ~binding:"go" Lint_effect.Unknown);
  Alcotest.(check bool) "Map.Make is pure" true
    (Lint_effect.is_empty (Lint_effects.effects table ~mdl:"Fc" ~binding:"tidy"))

let deep_findings files =
  let table = infer files in
  Lint_deep.run table ~manifest:Lint_deep.No_manifest_check
    ~manifest_path:".cseffects"

let test_r10_clock_in_core () =
  let findings =
    deep_findings
      [
        ( "lib/sched/guideline.ml",
          "let plan c = Helper.now () +. c\nlet shape c = c *. 2.0\n" );
        ("lib/sched/helper.ml", "let now () = Unix.gettimeofday ()\n");
      ]
  in
  let r10 =
    List.filter (fun (_, r) -> r.Lint_rules.r_rule = "R10") findings
  in
  Alcotest.(check bool) "R10 fired" true (List.length r10 >= 2);
  Alcotest.(check bool) "chain reaches Guideline.plan" true
    (List.exists
       (fun (file, r) ->
         file = "lib/sched/guideline.ml"
         && contains r.Lint_rules.r_msg "Guideline.plan"
         && contains r.Lint_rules.r_msg "clock")
       r10)

let test_r10_domain_allowed () =
  (* Domain_pool must be in the parsed set, else its entry points are
     unknown callees and taint with Unknown instead of domain. *)
  let findings =
    deep_findings
      [
        ( "lib/parallel/domain_pool.ml",
          "let run ~chunks f = Domain.join (Domain.spawn (fun () -> f chunks))\n"
        );
        ( "lib/sched/batch.ml",
          "let plan_batch pool n f = Domain_pool.run ~chunks:n (fun i -> f i)\n"
        );
      ]
  in
  Alcotest.(check int) "domain effect is legitimate in the core" 0
    (List.length
       (List.filter (fun (_, r) -> r.Lint_rules.r_rule = "R10") findings))

let test_r11_mutable_capture () =
  let findings =
    deep_findings
      [
        ( "lib/workload/tally.ml",
          "let total = ref 0.0\n\
           let go n =\n\
          \  Domain_pool.run ~chunks:n (fun i -> total := !total +. float_of_int i)\n"
        );
      ]
  in
  let r11 =
    List.filter (fun (_, r) -> r.Lint_rules.r_rule = "R11") findings
  in
  Alcotest.(check bool) "R11 fired on captured ref" true (List.length r11 >= 1);
  Alcotest.(check bool) "names the mutable" true
    (List.exists (fun (_, r) -> contains r.Lint_rules.r_msg "Tally.total") r11);
  (* Chunk-local state is the sanctioned shape. *)
  let clean =
    deep_findings
      [
        ( "lib/workload/tally.ml",
          "let go n =\n\
          \  Domain_pool.run ~chunks:n (fun i ->\n\
          \    let acc = ref 0.0 in\n\
          \    acc := !acc +. float_of_int i; !acc)\n" );
      ]
  in
  Alcotest.(check int) "local ref is fine" 0
    (List.length
       (List.filter (fun (_, r) -> r.Lint_rules.r_rule = "R11") clean))

let test_r11_read_only_capture () =
  (* Reading a toplevel ref inside a pool closure races with any writer;
     the mutable classification must win over the binding one. *)
  let findings =
    deep_findings
      [
        ( "lib/workload/tally.ml",
          "let total = ref 0.0\n\
           let go n = Domain_pool.run ~chunks:n (fun i -> !total +. float_of_int i)\n"
        );
      ]
  in
  Alcotest.(check bool) "read capture caught" true
    (List.exists
       (fun (_, r) ->
         r.Lint_rules.r_rule = "R11"
         && contains r.Lint_rules.r_msg "captures toplevel mutable")
       findings)

let test_r11_indirect_through_callee () =
  let findings =
    deep_findings
      [
        ( "lib/workload/tally.ml",
          "let total = ref 0.0\n\
           let bump x = total := !total +. x\n\
           let go n = Domain_pool.run ~chunks:n (fun i -> bump (float_of_int i))\n"
        );
      ]
  in
  Alcotest.(check bool) "capture through a callee is caught" true
    (List.exists (fun (_, r) -> r.Lint_rules.r_rule = "R11") findings)

(* ---- effects manifest: render / load / diff round-trip ---- *)

let test_manifest_roundtrip () =
  let sigs =
    [
      ("Alpha", Lint_effect.of_list [ Lint_effect.Clock; Lint_effect.Io ]);
      ("Beta", Lint_effect.empty);
    ]
  in
  let path = Filename.temp_file "cslint" ".cseffects" in
  Lint_manifest.save path sigs;
  (match Lint_manifest.load path with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      Alcotest.(check int) "two entries" 2 (List.length entries);
      Alcotest.(check int) "no drift" 0
        (List.length (Lint_manifest.diff entries sigs));
      let grown =
        [
          ( "Alpha",
            Lint_effect.of_list
              [ Lint_effect.Clock; Lint_effect.Io; Lint_effect.Gc ] );
          ("Gamma", Lint_effect.empty);
        ]
      in
      let drifts = Lint_manifest.diff entries grown in
      Alcotest.(check int) "three drifts" 3 (List.length drifts);
      Alcotest.(check bool) "new effect detected" true
        (List.exists
           (function
             | Lint_manifest.New_effects ("Alpha", s) ->
                 Lint_effect.mem Lint_effect.Gc s
             | _ -> false)
           drifts);
      Alcotest.(check bool) "missing module detected" true
        (List.exists
           (function
             | Lint_manifest.Missing_module "Gamma" -> true
             | _ -> false)
           drifts);
      Alcotest.(check bool) "stale module detected" true
        (List.exists
           (function
             | Lint_manifest.Stale_module ("Beta", _) -> true
             | _ -> false)
           drifts));
  Sys.remove path

let test_manifest_rejects_garbage () =
  let path = Filename.temp_file "cslint" ".cseffects" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "Alpha: clock\nno-colon-line\n");
  (match Lint_manifest.load path with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      Alcotest.(check bool) "names the file and line" true
        (String.length e > String.length path
        && String.sub e 0 (String.length path) = path));
  Sys.remove path

let test_rule_metadata_complete () =
  Alcotest.(check (list string))
    "rule ids"
    [
      "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R9"; "R10"; "R11";
      "R12"; "R13"; "R14"; "M1";
    ]
    (List.map (fun (m : Lint_rules.meta) -> m.id) Lint_rules.all_meta)

let () =
  Alcotest.run "lint"
    [
      ( "r1",
        [
          Alcotest.test_case "float literal" `Quick test_r1_literal;
          Alcotest.test_case "arith and compare" `Quick test_r1_arith_and_compare;
          Alcotest.test_case "clean and suppressed" `Quick
            test_r1_clean_and_suppressed;
        ] );
      ( "r2",
        [
          Alcotest.test_case "fold_left (+.)" `Quick test_r2_fold;
          Alcotest.test_case "ref accumulation" `Quick test_r2_ref_accumulation;
          Alcotest.test_case "scope and suppression" `Quick
            test_r2_scope_and_suppression;
        ] );
      ("r3", [ Alcotest.test_case "stdlib Random" `Quick test_r3 ]);
      ("r4", [ Alcotest.test_case "printing from lib" `Quick test_r4 ]);
      ( "r5",
        [
          Alcotest.test_case "mli pairing" `Quick test_r5;
          Alcotest.test_case "orphan mli" `Quick test_r5_orphan_mli;
        ] );
      ("mli", [ Alcotest.test_case "interface rules" `Quick test_mli_rules ]);
      ("r6", [ Alcotest.test_case "Obj escape hatches" `Quick test_r6 ]);
      ("r7", [ Alcotest.test_case "raw Domain.spawn" `Quick test_r7 ]);
      ("r8", [ Alcotest.test_case "wall-clock reads" `Quick test_r8 ]);
      ("r9", [ Alcotest.test_case "direct Gc stats" `Quick test_r9 ]);
      ("r13", [ Alcotest.test_case "socket I/O fence" `Quick test_r13 ]);
      ("r14", [ Alcotest.test_case "memo state fence" `Quick test_r14 ]);
      ("m1", [ Alcotest.test_case "unused allows" `Quick test_m1_unused_allow ]);
      ( "deep",
        [
          Alcotest.test_case "mutual recursion converges" `Quick
            test_fixpoint_mutual_recursion;
          Alcotest.test_case "higher-order propagation" `Quick
            test_higher_order_propagation;
          Alcotest.test_case "unknown callee taints" `Quick
            test_unknown_callee_taint;
          Alcotest.test_case "R10 clock in core" `Quick test_r10_clock_in_core;
          Alcotest.test_case "R10 domain allowed" `Quick test_r10_domain_allowed;
          Alcotest.test_case "R11 mutable capture" `Quick
            test_r11_mutable_capture;
          Alcotest.test_case "R11 read-only capture" `Quick
            test_r11_read_only_capture;
          Alcotest.test_case "R11 indirect capture" `Quick
            test_r11_indirect_through_callee;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "round-trip and drift" `Quick
            test_manifest_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_manifest_rejects_garbage;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "malformed allow" `Quick test_malformed_allow;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "baseline round-trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "rule metadata" `Quick test_rule_metadata_complete;
        ] );
    ]
