(* cslint rule fixtures: each rule gets a positive case, a suppressed
   case, and a clean case, asserted on exact finding counts and
   locations. Fixtures are inline strings fed through
   Lint_engine.lint_source, so the tests exercise the same parse +
   iterate + suppress pipeline as the CLI without touching the
   filesystem. *)

let lint ?(path = "lib/fixture.ml") src =
  match Lint_engine.lint_source ~path src with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let rules (r : Lint_engine.report) =
  List.map (fun (f : Lint_finding.t) -> f.rule) r.findings

let check_rules name expected r =
  Alcotest.(check (list string)) name expected (rules r)

(* ---- R1: polymorphic comparison with float operands ---- *)

let test_r1_literal () =
  let r = lint "let f x = x = 1.0\n" in
  check_rules "literal rhs" [ "R1" ] r;
  let f = List.hd r.findings in
  Alcotest.(check int) "line" 1 f.Lint_finding.line;
  Alcotest.(check int) "col" 10 f.Lint_finding.col

let test_r1_arith_and_compare () =
  let r =
    lint "let f a b c = (a +. b) <> c\nlet g x = compare (x /. 2.0) 1\n"
  in
  check_rules "arith operands" [ "R1"; "R1" ] r

let test_r1_clean_and_suppressed () =
  check_rules "int = is fine" []
    (lint "let f x = x = 1\nlet g a b = Tol.equal a b\n");
  (* An ordering comparison on floats is not R1's business. *)
  check_rules "ordering is fine" [] (lint "let f x = x <= 1.0\n");
  let r = lint "let f x = (x = 1.0) [@lint.allow \"R1\"]\n" in
  check_rules "suppressed" [] r;
  Alcotest.(check int) "counted" 1 r.suppressed

(* ---- R2: naive float accumulation (lib/ and bench/ only) ---- *)

let test_r2_fold () =
  check_rules "List.fold_left" [ "R2" ]
    (lint "let s xs = List.fold_left ( +. ) 0.0 xs\n");
  check_rules "Array.fold_left" [ "R2" ]
    (lint ~path:"bench/fixture.ml" "let s a = Array.fold_left ( +. ) 0.0 a\n");
  (* A non-float fold is fine; so is a fold with a custom combiner. *)
  check_rules "int fold" [] (lint "let s xs = List.fold_left ( + ) 0 xs\n");
  check_rules "combiner" []
    (lint "let s xs = List.fold_left (fun a x -> a +. exp x) 0.0 xs\n")

let test_r2_ref_accumulation () =
  let src =
    "let s xs =\n\
    \  let acc = ref 0.0 in\n\
    \  List.iter (fun x -> acc := !acc +. x) xs;\n\
    \  !acc\n"
  in
  let r = lint src in
  check_rules "ref accumulation" [ "R2" ] r;
  Alcotest.(check int) "line" 3 (List.hd r.findings).Lint_finding.line;
  (* Flipped operand order still counts; -. does not (not accumulation). *)
  check_rules "flipped" [ "R2" ]
    (lint "let f a x = a := x +. !a\n");
  check_rules "subtraction" [] (lint "let f a x = a := !a -. x\n");
  (* Accumulating into a different ref than the one dereferenced is a
     plain assignment, not the accumulation idiom. *)
  check_rules "different ref" [] (lint "let f a b x = a := !b +. x\n")

let test_r2_scope_and_suppression () =
  let src = "let s xs = List.fold_left ( +. ) 0.0 xs\n" in
  check_rules "examples exempt" [] (lint ~path:"examples/fixture.ml" src);
  check_rules "bin exempt" [] (lint ~path:"bin/fixture.ml" src);
  let r =
    lint
      "let f a x = (a := !a +. x) [@lint.allow \"R2\"]\nlet g a x = a := !a +. x\n"
  in
  check_rules "one suppressed one not" [ "R2" ] r;
  Alcotest.(check int) "line of live finding" 2
    (List.hd r.findings).Lint_finding.line

(* ---- R3: stdlib Random ---- *)

let test_r3 () =
  check_rules "value use" [ "R3" ] (lint "let r () = Random.float 1.0\n");
  check_rules "submodule" [ "R3" ]
    (lint "let r st = Random.State.float st 1.0\n");
  check_rules "open" [ "R3" ] (lint "open Random\n");
  check_rules "prng.ml exempt" []
    (lint ~path:"lib/numerics/prng.ml" "let r () = Random.float 1.0\n");
  check_rules "file-wide allow" []
    (lint "[@@@lint.allow \"R3\"]\nlet r () = Random.bool ()\n")

(* ---- R4: printing from lib/ ---- *)

let test_r4 () =
  check_rules "print_endline" [ "R4" ] (lint "let p () = print_endline \"x\"\n");
  check_rules "Printf.printf" [ "R4" ]
    (lint "let p n = Printf.printf \"%d\" n\n");
  check_rules "sprintf fine" []
    (lint "let p n = Printf.sprintf \"%d\" n\n");
  check_rules "bin exempt" []
    (lint ~path:"bin/fixture.ml" "let p () = print_endline \"x\"\n")

(* ---- R5: .mli pairing ---- *)

let test_r5 () =
  let fs =
    Lint_engine.missing_mli_findings
      [ "lib/a.ml"; "lib/b.ml"; "lib/b.mli"; "bin/c.ml"; "lib/dune" ]
  in
  Alcotest.(check (list string))
    "only unpaired lib ml" [ "R5" ]
    (List.map (fun (f : Lint_finding.t) -> f.rule) fs);
  Alcotest.(check string) "file" "lib/a.ml" (List.hd fs).Lint_finding.file

(* ---- R6: Obj.magic / Obj.repr ---- *)

let test_r6 () =
  check_rules "magic" [ "R6" ] (lint "let c x = Obj.magic x\n");
  check_rules "repr" [ "R6" ] (lint "let c x = Obj.repr x\n");
  check_rules "benign Obj fine" [] (lint "let t x = Obj.tag x\n");
  check_rules "suppressed" []
    (lint "let c x = (Obj.magic x) [@lint.allow \"R6\"]\n")

(* ---- R7: raw Domain.spawn outside lib/parallel/ ---- *)

let test_r7 () =
  check_rules "spawn in lib" [ "R7" ]
    (lint "let d f = Domain.spawn f\n");
  check_rules "spawn in bin" [ "R7" ]
    (lint ~path:"bin/fixture.ml" "let d f = Domain.spawn f\n");
  check_rules "lib/parallel exempt" []
    (lint ~path:"lib/parallel/domain_pool.ml" "let d f = Domain.spawn f\n");
  (* The rest of the Domain API is fine anywhere — only spawn creates
     execution contexts the pool can't account for. *)
  check_rules "join fine" [] (lint "let j d = Domain.join d\n");
  check_rules "suppressed" []
    (lint "let d f = (Domain.spawn f) [@lint.allow \"R7\"]\n")

(* ---- R8: wall-clock reads outside lib/obs/obs_clock.ml ---- *)

let test_r8 () =
  check_rules "gettimeofday in lib" [ "R8" ]
    (lint "let now () = Unix.gettimeofday ()\n");
  check_rules "Unix.time in bin" [ "R8" ]
    (lint ~path:"bin/fixture.ml" "let now () = Unix.time ()\n");
  check_rules "Sys.time in lib" [ "R8" ]
    (lint "let cpu () = Sys.time ()\n");
  check_rules "obs_clock exempt" []
    (lint ~path:"lib/obs/obs_clock.ml" "let now () = Unix.gettimeofday ()\n");
  (* The rest of Unix/Sys stays available — only the clocks are fenced. *)
  check_rules "other Unix fine" [] (lint "let pid () = Unix.getpid ()\n");
  check_rules "Sys.argv fine" [] (lint "let argv () = Sys.argv\n");
  check_rules "suppressed" []
    (lint "let now () = (Unix.time () [@lint.allow \"R8\"])\n")

let test_r9 () =
  check_rules "Gc.stat in lib" [ "R9" ]
    (lint "let words () = (Gc.stat ()).Gc.heap_words\n");
  check_rules "Gc.quick_stat in bin" [ "R9" ]
    (lint ~path:"bin/fixture.ml"
       "let minor () = (Gc.quick_stat ()).Gc.minor_words\n");
  check_rules "Gc.counters in lib" [ "R9" ]
    (lint "let c () = Gc.counters ()\n");
  check_rules "obs_resource exempt" []
    (lint ~path:"lib/obs/obs_resource.ml"
       "let words () = (Gc.quick_stat ()).Gc.minor_words\n");
  (* The rest of Gc stays available — only the stats probes are fenced. *)
  check_rules "Gc.compact fine" [] (lint "let go () = Gc.compact ()\n");
  check_rules "Gc.full_major fine" []
    (lint "let go () = Gc.full_major ()\n");
  check_rules "suppressed" []
    (lint "let s () = (Gc.quick_stat () [@lint.allow \"R9\"])\n")

(* ---- malformed suppression payloads, parse errors, baseline ---- *)

let test_malformed_allow () =
  let r = lint "let f x = (x = 1.0) [@lint.allow]\n" in
  (* The R1 finding survives and the bad attribute is itself reported. *)
  Alcotest.(check (list string))
    "E1 plus live R1" [ "E1"; "R1" ]
    (List.sort_uniq String.compare (rules r))

let test_parse_error () =
  match Lint_engine.lint_source ~path:"lib/bad.ml" "let let let\n" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e ->
      Alcotest.(check bool) "names the file" true
        (String.length e > 0
        && String.sub e 0 (min 10 (String.length e)) = "lib/bad.ml")

let test_baseline_roundtrip () =
  let f rule file line =
    { Lint_finding.rule; file; line; col = 0; message = "m" }
  in
  let findings = [ f "R1" "lib/a.ml" 3; f "R2" "lib/b.ml" 7 ] in
  let path = Filename.temp_file "cslint" ".baseline" in
  Lint_baseline.save path findings;
  (match Lint_baseline.load path with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      let fresh, baselined = Lint_baseline.apply entries findings in
      Alcotest.(check int) "all baselined" 2 baselined;
      Alcotest.(check int) "none fresh" 0 (List.length fresh);
      let fresh, _ = Lint_baseline.apply entries (f "R1" "lib/a.ml" 9 :: findings) in
      Alcotest.(check int) "moved finding is fresh" 1 (List.length fresh));
  Sys.remove path

let test_rule_metadata_complete () =
  Alcotest.(check (list string))
    "rule ids" [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R9" ]
    (List.map (fun (m : Lint_rules.meta) -> m.id) Lint_rules.all_meta)

let () =
  Alcotest.run "lint"
    [
      ( "r1",
        [
          Alcotest.test_case "float literal" `Quick test_r1_literal;
          Alcotest.test_case "arith and compare" `Quick test_r1_arith_and_compare;
          Alcotest.test_case "clean and suppressed" `Quick
            test_r1_clean_and_suppressed;
        ] );
      ( "r2",
        [
          Alcotest.test_case "fold_left (+.)" `Quick test_r2_fold;
          Alcotest.test_case "ref accumulation" `Quick test_r2_ref_accumulation;
          Alcotest.test_case "scope and suppression" `Quick
            test_r2_scope_and_suppression;
        ] );
      ("r3", [ Alcotest.test_case "stdlib Random" `Quick test_r3 ]);
      ("r4", [ Alcotest.test_case "printing from lib" `Quick test_r4 ]);
      ("r5", [ Alcotest.test_case "mli pairing" `Quick test_r5 ]);
      ("r6", [ Alcotest.test_case "Obj escape hatches" `Quick test_r6 ]);
      ("r7", [ Alcotest.test_case "raw Domain.spawn" `Quick test_r7 ]);
      ("r8", [ Alcotest.test_case "wall-clock reads" `Quick test_r8 ]);
      ("r9", [ Alcotest.test_case "direct Gc stats" `Quick test_r9 ]);
      ( "machinery",
        [
          Alcotest.test_case "malformed allow" `Quick test_malformed_allow;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "baseline round-trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "rule metadata" `Quick test_rule_metadata_complete;
        ] );
    ]
