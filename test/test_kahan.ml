let feq ?(eps = 1e-12) a b =
  Alcotest.(check (float eps)) "float equality" a b

let test_empty_sum () = feq 0.0 (Kahan.sum [||])

let test_simple_sum () = feq 6.0 (Kahan.sum [| 1.0; 2.0; 3.0 |])

let test_compensation_catastrophic () =
  (* Classic case: 1.0 + 1e100 - 1e100 loses the 1.0 naively when summed in
     an unfavourable order; Neumaier keeps it. *)
  feq 2.0 (Kahan.sum [| 1.0; 1e100; 1.0; -1e100 |])

let test_many_small_terms () =
  let n = 1_000_000 in
  let a = Array.make n 0.1 in
  let expected = 0.1 *. float_of_int n in
  feq ~eps:1e-7 expected (Kahan.sum a)

let test_incremental_matches_batch () =
  let acc = Kahan.create () in
  let values = [| 3.14; -2.71; 1e-9; 1e9; -1e9 |] in
  Array.iter (Kahan.add acc) values;
  feq (Kahan.sum values) (Kahan.total acc)

let test_sum_seq () =
  let s = Seq.init 100 (fun i -> float_of_int i) in
  feq 4950.0 (Kahan.sum_seq s)

let test_sum_by () =
  feq 14.0 (Kahan.sum_by (fun x -> x *. x) [| 1.0; 2.0; 3.0 |])

let test_cumulative_empty () =
  Alcotest.(check int) "empty" 0 (Array.length (Kahan.cumulative [||]))

let test_cumulative_values () =
  let c = Kahan.cumulative [| 1.0; 2.0; 3.0 |] in
  feq 1.0 c.(0);
  feq 3.0 c.(1);
  feq 6.0 c.(2)

let test_cumulative_last_equals_sum () =
  let a = Array.init 1000 (fun i -> sin (float_of_int i)) in
  let c = Kahan.cumulative a in
  feq ~eps:1e-12 (Kahan.sum a) c.(999)

let prop_sum_matches_sorted_naive =
  QCheck.Test.make ~name:"kahan sum ~ naive sum on benign data" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
    (fun a ->
      let naive = Array.fold_left ( +. ) 0.0 a in
      Float.abs (Kahan.sum a -. naive) <= 1e-9 *. Float.max 1.0 (Float.abs naive))

let () =
  Alcotest.run "kahan"
    [
      ( "kahan",
        [
          Alcotest.test_case "empty sum" `Quick test_empty_sum;
          Alcotest.test_case "simple sum" `Quick test_simple_sum;
          Alcotest.test_case "catastrophic cancellation" `Quick
            test_compensation_catastrophic;
          Alcotest.test_case "many small terms" `Quick test_many_small_terms;
          Alcotest.test_case "incremental = batch" `Quick
            test_incremental_matches_batch;
          Alcotest.test_case "sum of sequence" `Quick test_sum_seq;
          Alcotest.test_case "sum_by" `Quick test_sum_by;
          Alcotest.test_case "cumulative empty" `Quick test_cumulative_empty;
          Alcotest.test_case "cumulative values" `Quick test_cumulative_values;
          Alcotest.test_case "cumulative last = sum" `Quick
            test_cumulative_last_equals_sum;
          QCheck_alcotest.to_alcotest prop_sum_matches_sorted_naive;
        ] );
    ]
