let check_root ?(eps = 1e-9) expected (o : Rootfind.outcome) =
  Alcotest.(check (float eps)) "root" expected o.Rootfind.root

let test_bisect_linear () =
  check_root 2.0 (Rootfind.bisect (fun x -> x -. 2.0) ~lo:0.0 ~hi:10.0)

let test_bisect_endpoint_root () =
  check_root 0.0 (Rootfind.bisect (fun x -> x) ~lo:0.0 ~hi:1.0)

let test_bisect_no_bracket () =
  match Rootfind.bisect (fun x -> (x *. x) +. 1.0) ~lo:(-1.0) ~hi:1.0 with
  | exception Rootfind.No_bracket _ -> ()
  | _ -> Alcotest.fail "expected No_bracket"

let test_bisect_transcendental () =
  (* cos x = x has root ~0.7390851332151607 *)
  check_root 0.7390851332151607
    (Rootfind.bisect (fun x -> cos x -. x) ~lo:0.0 ~hi:1.0)

let test_brent_polynomial () =
  (* (x+3)(x-1)^2 has a simple root at -3 *)
  check_root (-3.0)
    (Rootfind.brent
       (fun x -> (x +. 3.0) *. (x -. 1.0) *. (x -. 1.0))
       ~lo:(-4.0) ~hi:0.0)

let test_brent_faster_than_bisect () =
  let evals_brent = ref 0 and evals_bisect = ref 0 in
  let f counter x =
    incr counter;
    exp x -. 2.0
  in
  let rb = Rootfind.brent (f evals_brent) ~lo:0.0 ~hi:2.0 in
  let rc = Rootfind.bisect (f evals_bisect) ~lo:0.0 ~hi:2.0 in
  check_root (log 2.0) rb;
  check_root (log 2.0) rc;
  Alcotest.(check bool) "brent uses fewer iterations" true
    (rb.Rootfind.iterations <= rc.Rootfind.iterations)

let test_brent_no_bracket () =
  match Rootfind.brent (fun _ -> 1.0) ~lo:0.0 ~hi:1.0 with
  | exception Rootfind.No_bracket _ -> ()
  | _ -> Alcotest.fail "expected No_bracket"

let test_secant_quadratic () =
  check_root ~eps:1e-8 (sqrt 2.0)
    (Rootfind.secant (fun x -> (x *. x) -. 2.0) ~x0:1.0 ~x1:2.0)

let test_secant_flat_raises () =
  match Rootfind.secant (fun _ -> 1.0) ~x0:0.0 ~x1:1.0 with
  | exception Rootfind.Did_not_converge _ -> ()
  | _ -> Alcotest.fail "expected Did_not_converge"

let test_newton_cubic () =
  let f x = (x *. x *. x) -. 8.0 in
  let df x = 3.0 *. x *. x in
  check_root ~eps:1e-8 2.0 (Rootfind.newton ~f ~df 3.0)

let test_newton_zero_derivative () =
  match Rootfind.newton ~f:(fun _ -> 1.0) ~df:(fun _ -> 0.0) 0.0 with
  | exception Rootfind.Did_not_converge _ -> ()
  | _ -> Alcotest.fail "expected Did_not_converge"

let test_expand_bracket () =
  let lo, hi = Rootfind.expand_bracket (fun x -> x -. 100.0) ~lo:0.0 ~hi:1.0 in
  Alcotest.(check bool) "brackets 100" true (lo <= 100.0 && hi >= 100.0)

let test_expand_bracket_fails () =
  match
    Rootfind.expand_bracket (fun x -> (x *. x) +. 1.0) ~lo:0.0 ~hi:1.0
  with
  | exception Rootfind.No_bracket _ -> ()
  | _ -> Alcotest.fail "expected No_bracket"

let test_find_sign_change () =
  match Rootfind.find_sign_change sin ~lo:1.0 ~hi:7.0 ~steps:100 with
  | Some (a, b) ->
      Alcotest.(check bool) "brackets pi" true (a <= Float.pi && Float.pi <= b)
  | None -> Alcotest.fail "expected a sign change"

let test_find_sign_change_none () =
  Alcotest.(check bool) "no sign change" true
    (Rootfind.find_sign_change (fun x -> (x *. x) +. 1.0) ~lo:0.0 ~hi:1.0
       ~steps:10
    = None)

let prop_brent_residual_small =
  (* For random monotone cubics with a bracketed root, the residual at the
     returned root is tiny. *)
  QCheck.Test.make ~name:"brent residual small on monotone cubics" ~count:200
    QCheck.(pair (float_range 0.1 10.0) (float_range (-5.0) 5.0))
    (fun (a, b) ->
      let f x = (a *. x *. x *. x) +. x -. b in
      let r = Rootfind.brent f ~lo:(-10.0) ~hi:10.0 in
      Float.abs r.Rootfind.residual < 1e-6)

let () =
  Alcotest.run "rootfind"
    [
      ( "rootfind",
        [
          Alcotest.test_case "bisect linear" `Quick test_bisect_linear;
          Alcotest.test_case "bisect endpoint root" `Quick
            test_bisect_endpoint_root;
          Alcotest.test_case "bisect no bracket" `Quick test_bisect_no_bracket;
          Alcotest.test_case "bisect transcendental" `Quick
            test_bisect_transcendental;
          Alcotest.test_case "brent polynomial" `Quick test_brent_polynomial;
          Alcotest.test_case "brent beats bisect" `Quick
            test_brent_faster_than_bisect;
          Alcotest.test_case "brent no bracket" `Quick test_brent_no_bracket;
          Alcotest.test_case "secant quadratic" `Quick test_secant_quadratic;
          Alcotest.test_case "secant flat raises" `Quick
            test_secant_flat_raises;
          Alcotest.test_case "newton cubic" `Quick test_newton_cubic;
          Alcotest.test_case "newton zero derivative" `Quick
            test_newton_zero_derivative;
          Alcotest.test_case "expand bracket" `Quick test_expand_bracket;
          Alcotest.test_case "expand bracket fails" `Quick
            test_expand_bracket_fails;
          Alcotest.test_case "find sign change" `Quick test_find_sign_change;
          Alcotest.test_case "find sign change none" `Quick
            test_find_sign_change_none;
          QCheck_alcotest.to_alcotest prop_brent_residual_small;
        ] );
    ]
