let c = 1.0

let test_paper_scenarios_unique () =
  (* §6: "each of the life functions studied in [3] admits a unique optimal
     schedule" — the probe should find one near-optimal t0 cluster. *)
  List.iter
    (fun (name, lf) ->
      let p = Uniqueness.probe lf ~c in
      Alcotest.(check int)
        (Printf.sprintf "%s: one cluster" name)
        1
        (List.length p.Uniqueness.clusters))
    (Families.all_paper_scenarios ~c)

let test_cluster_contains_exact_t0_uniform () =
  let lf = Families.uniform ~lifespan:100.0 in
  let exact = Exact.uniform ~c ~lifespan:100.0 in
  match (Uniqueness.probe lf ~c).Uniqueness.clusters with
  | [ cl ] ->
      Alcotest.(check bool)
        (Printf.sprintf "optimal t0 %.3f in [%.3f, %.3f]" exact.Exact.t0
           cl.Uniqueness.t0_low cl.Uniqueness.t0_high)
        true
        (exact.Exact.t0 >= cl.Uniqueness.t0_low -. 0.1
        && exact.Exact.t0 <= cl.Uniqueness.t0_high +. 0.1)
  | _ -> Alcotest.fail "expected one cluster"

let test_cluster_is_narrow () =
  (* Near-uniqueness: the 1e-4-optimal set should be a small fraction of
     the search bracket. *)
  let lf = Families.uniform ~lifespan:100.0 in
  let lo, hi = Bounds.bracket lf ~c in
  match (Uniqueness.probe lf ~c).Uniqueness.clusters with
  | [ cl ] ->
      let width = cl.Uniqueness.t0_high -. cl.Uniqueness.t0_low in
      Alcotest.(check bool)
        (Printf.sprintf "width %.3f vs bracket %.3f" width (hi -. lo))
        true
        (width < 0.25 *. (hi -. lo))
  | _ -> Alcotest.fail "expected one cluster"

let test_best_value_consistent () =
  let lf = Families.polynomial ~d:2 ~lifespan:80.0 in
  let p = Uniqueness.probe lf ~c in
  let g = Guideline.plan lf ~c in
  Alcotest.(check bool) "probe max ~ guideline E" true
    (Float.abs (p.Uniqueness.max_value -. g.Guideline.expected_work)
    <= 0.01 *. g.Guideline.expected_work)

let test_loose_tolerance_widens_cluster () =
  let lf = Families.uniform ~lifespan:60.0 in
  let tight = Uniqueness.probe ~rel_tol:1e-6 lf ~c in
  let loose = Uniqueness.probe ~rel_tol:0.05 lf ~c in
  let width p =
    List.fold_left
      (fun acc cl -> acc +. (cl.Uniqueness.t0_high -. cl.Uniqueness.t0_low))
      0.0 p.Uniqueness.clusters
  in
  Alcotest.(check bool) "looser tolerance, wider set" true
    (width loose >= width tight)

let test_unique_helper () =
  Alcotest.(check bool) "uniform unique" true
    (Uniqueness.unique (Families.uniform ~lifespan:100.0) ~c)

let test_validation () =
  match Uniqueness.probe ~samples:2 (Families.uniform ~lifespan:10.0) ~c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "samples = 2 accepted"

let prop_probe_never_empty =
  QCheck.Test.make ~name:"probe always finds at least one cluster" ~count:20
    QCheck.(pair (float_range 0.4 2.0) (float_range 25.0 150.0))
    (fun (c, l) ->
      let lf = Families.polynomial ~d:2 ~lifespan:l in
      (Uniqueness.probe lf ~c).Uniqueness.clusters <> [])

let () =
  Alcotest.run "uniqueness"
    [
      ( "uniqueness",
        [
          Alcotest.test_case "paper scenarios unique" `Quick
            test_paper_scenarios_unique;
          Alcotest.test_case "cluster contains optimal t0" `Quick
            test_cluster_contains_exact_t0_uniform;
          Alcotest.test_case "cluster narrow" `Quick test_cluster_is_narrow;
          Alcotest.test_case "best value consistent" `Quick
            test_best_value_consistent;
          Alcotest.test_case "tolerance widens cluster" `Quick
            test_loose_tolerance_widens_cluster;
          Alcotest.test_case "unique helper" `Quick test_unique_helper;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest prop_probe_never_empty;
        ] );
    ]
