let samples_of model n seed =
  let rng = Prng.create ~seed in
  Array.init n (fun _ -> Owner_model.sample model rng)

let test_exponential_mle_recovers_rate () =
  let ds = samples_of (Owner_model.Exponential_absence { mean = 4.0 }) 20_000 1L in
  let f = Fit.exponential_mle ds in
  Alcotest.(check string) "family" "exponential" f.Fit.family;
  match List.assoc_opt "rate" f.Fit.params with
  | Some rate -> Alcotest.(check (float 0.01)) "rate" 0.25 rate
  | None -> Alcotest.fail "missing rate param"

let test_uniform_fit_recovers_lifespan () =
  let ds = samples_of (Owner_model.Uniform_absence { max = 12.0 }) 20_000 2L in
  let f = Fit.uniform_fit ds in
  match List.assoc_opt "lifespan" f.Fit.params with
  | Some l -> Alcotest.(check (float 0.05)) "lifespan" 12.0 l
  | None -> Alcotest.fail "missing lifespan param"

let test_weibull_mle_recovers_params () =
  let ds =
    samples_of (Owner_model.Weibull_absence { shape = 2.0; scale = 10.0 }) 20_000 3L
  in
  let f = Fit.weibull_mle ds in
  let shape = List.assoc "shape" f.Fit.params in
  let scale = List.assoc "scale" f.Fit.params in
  Alcotest.(check (float 0.05)) "shape" 2.0 shape;
  Alcotest.(check (float 0.15)) "scale" 10.0 scale

let test_weibull_mle_shape_below_one () =
  let ds =
    samples_of (Owner_model.Weibull_absence { shape = 0.7; scale = 5.0 }) 20_000 4L
  in
  let f = Fit.weibull_mle ds in
  Alcotest.(check (float 0.03)) "shape" 0.7 (List.assoc "shape" f.Fit.params)

let test_weibull_needs_distinct () =
  match Fit.weibull_mle [| 2.0; 2.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "identical durations accepted"

let test_polynomial_fit_prefers_uniform_data () =
  (* Uniform data is p_{1,L}: polynomial fit should pick d = 1 (or produce
     an SSE no worse than d = 1's). *)
  let ds = samples_of (Owner_model.Uniform_absence { max = 10.0 }) 10_000 5L in
  let f = Fit.polynomial_fit ds in
  let d = int_of_float (List.assoc "d" f.Fit.params) in
  Alcotest.(check bool) (Printf.sprintf "low d (got %d)" d) true (d <= 2)

let test_geometric_increasing_fit_recovers_lifespan () =
  (* Sample reclaim times from the geo-inc scenario itself. *)
  let lf = Families.geometric_increasing ~lifespan:25.0 in
  let sampler = Reclaim.create lf in
  let rng = Prng.create ~seed:77L in
  let ds = Array.init 6_000 (fun _ -> Float.max 1e-9 (Reclaim.draw sampler rng)) in
  let f = Fit.geometric_increasing_fit ds in
  let l = List.assoc "lifespan" f.Fit.params in
  Alcotest.(check bool) (Printf.sprintf "lifespan %.2f near 25" l) true
    (Float.abs (l -. 25.0) < 1.0)

let test_best_fit_prefers_geo_inc_on_its_own_data () =
  let lf = Families.geometric_increasing ~lifespan:25.0 in
  let sampler = Reclaim.create lf in
  let rng = Prng.create ~seed:78L in
  let ds = Array.init 6_000 (fun _ -> Float.max 1e-9 (Reclaim.draw sampler rng)) in
  let best = Fit.best_fit ds in
  Alcotest.(check bool)
    (Printf.sprintf "geo-inc competitive (got %s)" best.Fit.family)
    true
    (best.Fit.sse <= (Fit.geometric_increasing_fit ds).Fit.sse +. 1e-9)

let test_best_fit_selects_right_family_exponential () =
  let ds = samples_of (Owner_model.Exponential_absence { mean = 6.0 }) 20_000 6L in
  let f = Fit.best_fit ds in
  (* Exponential data: exponential or weibull (shape ~ 1) both fine; the
     uniform family must lose. *)
  Alcotest.(check bool)
    (Printf.sprintf "not uniform (got %s)" f.Fit.family)
    true
    (f.Fit.family <> "uniform")

let test_best_fit_selects_right_family_uniform () =
  let ds = samples_of (Owner_model.Uniform_absence { max = 15.0 }) 20_000 7L in
  let f = Fit.best_fit ds in
  Alcotest.(check bool)
    (Printf.sprintf "uniform-ish (got %s)" f.Fit.family)
    true
    (f.Fit.family = "uniform" || f.Fit.family = "polynomial(d=1)"
    || f.Fit.family = "weibull")

let test_best_fit_sse_is_minimal () =
  let ds = samples_of (Owner_model.Exponential_absence { mean = 5.0 }) 5_000 8L in
  let best = Fit.best_fit ds in
  List.iter
    (fun candidate ->
      Alcotest.(check bool)
        (candidate.Fit.family ^ " not better")
        true
        (best.Fit.sse <= candidate.Fit.sse +. 1e-12))
    [ Fit.exponential_mle ds; Fit.uniform_fit ds; Fit.polynomial_fit ds ]

let test_sse_against_ecdf_zero_for_perfect () =
  (* The ECDF of a sample scored against itself-as-interpolant is near 0;
     use the exponential truth on huge n as a proxy: SSE per point small. *)
  let ds = samples_of (Owner_model.Exponential_absence { mean = 5.0 }) 20_000 9L in
  let truth = Families.exponential ~rate:0.2 in
  let sse = Fit.sse_against_ecdf truth ds in
  Alcotest.(check bool) "small per-point error" true
    (sse /. float_of_int (Array.length ds) < 1e-3)

let test_fitted_lives_are_schedulable () =
  let ds = samples_of (Owner_model.Weibull_absence { shape = 1.5; scale = 20.0 }) 3_000 10L in
  let f = Fit.best_fit ds in
  let r = Guideline.plan f.Fit.life ~c:1.0 in
  Alcotest.(check bool) "positive expected work" true
    (r.Guideline.expected_work > 0.0)

let test_validation () =
  (match Fit.exponential_mle [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted");
  (match Fit.uniform_fit [| -1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative duration accepted");
  match Fit.best_fit [| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single observation accepted"

let prop_exponential_mle_rate_consistent =
  QCheck.Test.make ~name:"exponential MLE rate ~ 1/sample-mean" ~count:50
    QCheck.(array_of_size Gen.(int_range 5 100) (float_range 0.1 50.0))
    (fun ds ->
      let f = Fit.exponential_mle ds in
      let rate = List.assoc "rate" f.Fit.params in
      Float.abs (rate -. (1.0 /. Stats.mean ds)) < 1e-9)

let prop_best_fit_recovers_scale_order =
  QCheck.Test.make
    ~name:"best fit's mean lifetime tracks the sample mean" ~count:10
    QCheck.(float_range 2.0 30.0)
    (fun mean ->
      let ds =
        samples_of (Owner_model.Exponential_absence { mean }) 5_000
          (Int64.of_float (mean *. 1000.0))
      in
      let f = Fit.best_fit ds in
      let fitted_mean = Life_function.mean_lifetime f.Fit.life in
      Float.abs (fitted_mean -. mean) /. mean < 0.2)

let () =
  Alcotest.run "fit"
    [
      ( "fit",
        [
          Alcotest.test_case "exponential MLE" `Quick
            test_exponential_mle_recovers_rate;
          Alcotest.test_case "uniform fit" `Quick
            test_uniform_fit_recovers_lifespan;
          Alcotest.test_case "weibull MLE" `Quick test_weibull_mle_recovers_params;
          Alcotest.test_case "weibull shape < 1" `Quick
            test_weibull_mle_shape_below_one;
          Alcotest.test_case "weibull needs distinct" `Quick
            test_weibull_needs_distinct;
          Alcotest.test_case "polynomial on uniform data" `Quick
            test_polynomial_fit_prefers_uniform_data;
          Alcotest.test_case "geo-inc fit recovers L" `Quick
            test_geometric_increasing_fit_recovers_lifespan;
          Alcotest.test_case "best fit on geo-inc data" `Quick
            test_best_fit_prefers_geo_inc_on_its_own_data;
          Alcotest.test_case "best fit exponential" `Quick
            test_best_fit_selects_right_family_exponential;
          Alcotest.test_case "best fit uniform" `Quick
            test_best_fit_selects_right_family_uniform;
          Alcotest.test_case "best fit minimal SSE" `Quick
            test_best_fit_sse_is_minimal;
          Alcotest.test_case "sse near zero for truth" `Quick
            test_sse_against_ecdf_zero_for_perfect;
          Alcotest.test_case "fitted schedulable" `Quick
            test_fitted_lives_are_schedulable;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest prop_exponential_mle_rate_consistent;
          QCheck_alcotest.to_alcotest prop_best_fit_recovers_scale_order;
        ] );
    ]
