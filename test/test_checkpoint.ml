let lf = Families.exponential ~rate:0.02 (* mean time to failure 50 *)
let c = 1.0

let test_plan_saves_basic () =
  let p = Checkpoint.plan_saves lf ~c in
  Alcotest.(check bool) "positive committed" true
    (p.Checkpoint.expected_committed > 0.0);
  Alcotest.(check bool) "multiple intervals" true
    (Schedule.num_periods p.Checkpoint.intervals > 1)

let test_plan_is_guideline_plan () =
  (* The checkpoint plan is exactly the cycle-stealing guideline plan: the
     formal correspondence of the paper's §1 Remark. *)
  let p = Checkpoint.plan_saves lf ~c in
  let g = Guideline.plan lf ~c in
  Alcotest.(check (float 1e-9)) "same expected value"
    g.Guideline.expected_work p.Checkpoint.expected_committed

let test_plan_truncated_to_work () =
  let work = 10.0 in
  let p = Checkpoint.plan_saves ~work lf ~c in
  (* Productive time of the plan covers exactly the work. *)
  Alcotest.(check (float 1e-6)) "covers work" work
    (Schedule.work_capacity ~c p.Checkpoint.intervals)

let test_plan_validation () =
  (match Checkpoint.plan_saves lf ~c:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = 0 accepted");
  match Checkpoint.plan_saves ~work:(-5.0) lf ~c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative work accepted"

let test_expected_committed_per_attempt () =
  let e = Checkpoint.expected_committed_per_attempt ~work:10.0 ~c lf in
  Alcotest.(check bool) "bounded by work" true (e > 0.0 && e <= 10.0)

let test_simulate_restarts_completes () =
  let g = Prng.create ~seed:42L in
  let r =
    Checkpoint.simulate_restarts ~work:50.0 ~c ~restart_cost:5.0 lf g
      ~max_failures:10_000
  in
  Alcotest.(check bool) "makespan >= work" true (r.Checkpoint.makespan >= 50.0);
  Alcotest.(check bool) "some checkpoints" true
    (r.Checkpoint.checkpoints_written > 0)

let test_simulate_deterministic () =
  let run seed =
    let g = Prng.create ~seed in
    Checkpoint.simulate_restarts ~work:30.0 ~c ~restart_cost:2.0 lf g
      ~max_failures:10_000
  in
  let r1 = run 7L and r2 = run 7L in
  Alcotest.(check (float 0.0)) "same makespan" r1.Checkpoint.makespan
    r2.Checkpoint.makespan;
  Alcotest.(check int) "same failures" r1.Checkpoint.failures
    r2.Checkpoint.failures

let test_simulate_failure_free_when_reliable () =
  (* Near-immortal machine: one pass, no failures. *)
  let reliable = Families.exponential ~rate:1e-7 in
  let g = Prng.create ~seed:1L in
  let r =
    Checkpoint.simulate_restarts ~work:20.0 ~c ~restart_cost:1.0 reliable g
      ~max_failures:10
  in
  Alcotest.(check int) "no failures" 0 r.Checkpoint.failures;
  Alcotest.(check (float 1e-6)) "no work lost" 0.0 r.Checkpoint.work_lost_total

let test_simulate_validation () =
  let g = Prng.create ~seed:1L in
  match
    Checkpoint.simulate_restarts ~work:0.0 ~c ~restart_cost:1.0 lf g
      ~max_failures:1
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero work accepted"

let test_more_failures_longer_makespan () =
  (* Averaged over seeds, a flakier machine takes longer. *)
  let mean_makespan rate =
    let lf = Families.exponential ~rate in
    let seeds = [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L; 9L; 10L ] in
    let total =
      List.fold_left
        (fun acc seed ->
          let g = Prng.create ~seed in
          let r =
            Checkpoint.simulate_restarts ~work:40.0 ~c ~restart_cost:3.0 lf g
              ~max_failures:100_000
          in
          acc +. r.Checkpoint.makespan)
        0.0 seeds
    in
    total /. 10.0
  in
  Alcotest.(check bool) "flaky slower" true
    (mean_makespan 0.05 > mean_makespan 0.005)

let prop_checkpoint_cost_tradeoff =
  (* Higher save cost c must not increase the expected committed work per
     attempt. *)
  QCheck.Test.make ~name:"expected committed decreases with save cost"
    ~count:20
    QCheck.(float_range 0.2 2.0)
    (fun c1 ->
      let c2 = c1 *. 2.0 in
      Checkpoint.expected_committed_per_attempt ~work:100.0 ~c:c1 lf
      >= Checkpoint.expected_committed_per_attempt ~work:100.0 ~c:c2 lf
         -. 1e-9)

let prop_simulation_conserves_work =
  QCheck.Test.make ~name:"simulation completes exactly the requested work"
    ~count:20
    QCheck.(pair (float_range 5.0 60.0) (int_range 1 1000))
    (fun (work, seed) ->
      let g = Prng.create ~seed:(Int64.of_int seed) in
      let r =
        Checkpoint.simulate_restarts ~work ~c ~restart_cost:1.0 lf g
          ~max_failures:1_000_000
      in
      (* makespan >= work + checkpoint overhead of at least one interval *)
      r.Checkpoint.makespan >= work)

let () =
  Alcotest.run "checkpoint"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "plan basics" `Quick test_plan_saves_basic;
          Alcotest.test_case "plan = guideline (§1 Remark)" `Quick
            test_plan_is_guideline_plan;
          Alcotest.test_case "truncated to work" `Quick
            test_plan_truncated_to_work;
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          Alcotest.test_case "expected per attempt" `Quick
            test_expected_committed_per_attempt;
          Alcotest.test_case "simulation completes" `Quick
            test_simulate_restarts_completes;
          Alcotest.test_case "simulation deterministic" `Quick
            test_simulate_deterministic;
          Alcotest.test_case "reliable machine" `Quick
            test_simulate_failure_free_when_reliable;
          Alcotest.test_case "simulation validation" `Quick
            test_simulate_validation;
          Alcotest.test_case "flaky machine slower" `Quick
            test_more_failures_longer_makespan;
          QCheck_alcotest.to_alcotest prop_checkpoint_cost_tradeoff;
          QCheck_alcotest.to_alcotest prop_simulation_conserves_work;
        ] );
    ]
