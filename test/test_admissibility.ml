let test_uniform_admissible () =
  Alcotest.(check bool) "uniform admits optimal schedule" true
    (Admissibility.is_admissible (Families.uniform ~lifespan:100.0) ~c:1.0)

let test_geometric_decreasing_admissible () =
  Alcotest.(check bool) "geometric-decreasing admissible" true
    (Admissibility.is_admissible (Families.geometric_decreasing ~a:2.0) ~c:0.5)

let test_geometric_increasing_admissible () =
  Alcotest.(check bool) "geometric-increasing admissible" true
    (Admissibility.is_admissible
       (Families.geometric_increasing ~lifespan:30.0)
       ~c:1.0)

let test_power_law_inadmissible () =
  (* The paper's Corollary 3.2 example: p = 1/(t+1)^d with d > 1 admits no
     optimal schedule. *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "power-law d=%g inadmissible" d)
        false
        (Admissibility.is_admissible (Families.power_law ~d) ~c:1.0))
    [ 1.5; 2.0; 3.0 ]

let test_power_law_d1_boundary () =
  (* d = 1: the literal Cor 3.2 margin is positive ((1+c)/(t+1)^2 > 0),
     yet no optimal schedule exists (expected work is unbounded over
     schedules); the divergent-integral test must catch it. *)
  let lf = Families.power_law ~d:1.0 in
  Alcotest.(check bool) "margin positive at t=2" true
    (Admissibility.margin lf ~c:1.0 2.0 > 0.0);
  (match Admissibility.test lf ~c:1.0 with
  | Admissibility.Inadmissible (Admissibility.Unbounded_work { tail_ratio }) ->
      Alcotest.(check bool) "tail ratio ~ 1" true (tail_ratio >= 0.98)
  | Admissibility.Inadmissible
      (Admissibility.Negative_margin _ | Admissibility.Heavy_tail _) ->
      Alcotest.fail "d = 1 should fail via unbounded work"
  | Admissibility.Admissible _ -> Alcotest.fail "d = 1 must be inadmissible")

let test_margin_formula () =
  (* Uniform L=10, c=1: margin(t) = 1 - t/10 - (t-1)/10 = 1.1 - 0.2 t. *)
  let lf = Families.uniform ~lifespan:10.0 in
  Alcotest.(check (float 1e-9)) "margin at t=2" 0.7
    (Admissibility.margin lf ~c:1.0 2.0);
  Alcotest.(check (float 1e-9)) "margin at t=5.5" 0.0
    (Admissibility.margin lf ~c:1.0 5.5)

let test_witness_is_valid () =
  match Admissibility.test (Families.uniform ~lifespan:10.0) ~c:1.0 with
  | Admissibility.Admissible { witness; margin } ->
      Alcotest.(check bool) "witness > c" true (witness > 1.0);
      Alcotest.(check (float 1e-6)) "margin consistent" margin
        (Admissibility.margin (Families.uniform ~lifespan:10.0) ~c:1.0 witness);
      Alcotest.(check bool) "margin positive" true (margin > 0.0)
  | Admissibility.Inadmissible _ -> Alcotest.fail "uniform must be admissible"

let test_inadmissible_reason_is_heavy_tail () =
  (* The power laws fail via polynomial tail weight, not a negative margin:
     their Cor 3.2 margin is positive on (c, (1+dc)/(d-1)). A t^{-2} tail
     has doubling-panel decay ratio 2^{1-2} = 0.5. *)
  match Admissibility.test (Families.power_law ~d:2.0) ~c:1.0 with
  | Admissibility.Inadmissible (Admissibility.Heavy_tail { tail_ratio }) ->
      Alcotest.(check (float 0.02)) "panel ratio 2^(1-d)" 0.5 tail_ratio
  | Admissibility.Inadmissible
      (Admissibility.Negative_margin _ | Admissibility.Unbounded_work _) ->
      Alcotest.fail "power-law d=2 should fail via heavy tail"
  | Admissibility.Admissible _ ->
      Alcotest.fail "power-law d=2 must be inadmissible"

let test_validation () =
  (match Admissibility.test (Families.uniform ~lifespan:10.0) ~c:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = 0 rejected");
  match Admissibility.test (Families.uniform ~lifespan:10.0) ~c:20.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c >= horizon rejected"

let prop_paper_families_admissible =
  QCheck.Test.make
    ~name:"paper scenario families are admissible for reasonable c" ~count:50
    QCheck.(float_range 0.1 2.0)
    (fun c ->
      List.for_all
        (fun (_, lf) -> Admissibility.is_admissible lf ~c)
        (Families.all_paper_scenarios ~c))

let prop_power_law_heavy_tails_inadmissible =
  QCheck.Test.make ~name:"power laws with d > 1.2 are inadmissible" ~count:50
    QCheck.(pair (float_range 1.2 5.0) (float_range 0.2 3.0))
    (fun (d, c) ->
      not (Admissibility.is_admissible (Families.power_law ~d) ~c))

let () =
  Alcotest.run "admissibility"
    [
      ( "admissibility",
        [
          Alcotest.test_case "uniform admissible" `Quick
            test_uniform_admissible;
          Alcotest.test_case "geo-dec admissible" `Quick
            test_geometric_decreasing_admissible;
          Alcotest.test_case "geo-inc admissible" `Quick
            test_geometric_increasing_admissible;
          Alcotest.test_case "power law inadmissible" `Quick
            test_power_law_inadmissible;
          Alcotest.test_case "power law d=1 boundary" `Quick
            test_power_law_d1_boundary;
          Alcotest.test_case "margin formula" `Quick test_margin_formula;
          Alcotest.test_case "witness valid" `Quick test_witness_is_valid;
          Alcotest.test_case "inadmissible reason" `Quick
            test_inadmissible_reason_is_heavy_tail;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest prop_paper_families_admissible;
          QCheck_alcotest.to_alcotest prop_power_law_heavy_tails_inadmissible;
        ] );
    ]
