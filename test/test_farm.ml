let uniform_ws =
  { Farm.ws_life = Families.uniform ~lifespan:100.0; ws_presence_mean = 50.0 }

let base_config =
  {
    Farm.c = 1.0;
    total_work = 500.0;
    workstations = [ uniform_ws; uniform_ws ];
    policy = Farm.guideline_policy;
    max_time = 1e6;
  }

let test_farm_finishes () =
  let r = Farm.run base_config ~seed:1L in
  Alcotest.(check bool) "finished" true r.Farm.finished;
  Alcotest.(check (float 1e-6)) "all work done" 500.0 r.Farm.total_done;
  Alcotest.(check (float 1e-6)) "pool empty" 0.0 r.Farm.pool_remaining

let test_work_conservation () =
  (* done + remaining = total, lost work recycles. *)
  List.iter
    (fun seed ->
      let r = Farm.run base_config ~seed in
      Alcotest.(check (float 1e-6)) "conservation" base_config.Farm.total_work
        (r.Farm.total_done +. r.Farm.pool_remaining))
    [ 1L; 2L; 3L; 42L ]

let test_deterministic_in_seed () =
  let r1 = Farm.run base_config ~seed:9L in
  let r2 = Farm.run base_config ~seed:9L in
  Alcotest.(check (float 0.0)) "same makespan" r1.Farm.makespan r2.Farm.makespan;
  Alcotest.(check (float 0.0)) "same lost" r1.Farm.total_lost r2.Farm.total_lost

let test_different_seeds_differ () =
  let r1 = Farm.run base_config ~seed:1L in
  let r2 = Farm.run base_config ~seed:2L in
  Alcotest.(check bool) "makespans differ" true
    (r1.Farm.makespan <> r2.Farm.makespan)

let test_more_workstations_faster () =
  let two = Farm.run base_config ~seed:5L in
  let four =
    Farm.run
      { base_config with Farm.workstations = [ uniform_ws; uniform_ws; uniform_ws; uniform_ws ] }
      ~seed:5L
  in
  Alcotest.(check bool) "four stations no slower" true
    (four.Farm.makespan <= two.Farm.makespan +. 1e-9)

let test_max_time_cutoff () =
  let r = Farm.run { base_config with Farm.max_time = 10.0 } ~seed:1L in
  Alcotest.(check bool) "unfinished" false r.Farm.finished;
  Alcotest.(check (float 0.0)) "makespan = cutoff" 10.0 r.Farm.makespan;
  Alcotest.(check (float 1e-6)) "conservation under cutoff" 500.0
    (r.Farm.total_done +. r.Farm.pool_remaining)

let test_per_workstation_stats_consistent () =
  let r = Farm.run base_config ~seed:11L in
  let sum_done =
    List.fold_left (fun a w -> a +. w.Farm.work_done) 0.0 r.Farm.per_workstation
  in
  Alcotest.(check (float 1e-6)) "per-ws sums to total" r.Farm.total_done sum_done;
  List.iter
    (fun w ->
      Alcotest.(check bool) "episodes >= killed" true
        (w.Farm.episodes >= w.Farm.periods_killed))
    r.Farm.per_workstation

let test_policies_all_complete () =
  List.iter
    (fun policy ->
      let r =
        Farm.run
          { base_config with Farm.policy; total_work = 100.0 }
          ~seed:3L
      in
      Alcotest.(check bool)
        (policy.Farm.policy_name ^ " finishes")
        true r.Farm.finished)
    [
      Farm.guideline_policy;
      Farm.adaptive_policy;
      Farm.greedy_policy;
      Farm.fixed_chunk_policy ~chunk:10.0;
    ]

let test_heterogeneous_fleet () =
  let fleet =
    [
      { Farm.ws_life = Families.uniform ~lifespan:100.0; ws_presence_mean = 40.0 };
      {
        Farm.ws_life = Families.geometric_decreasing ~a:(exp 0.02);
        ws_presence_mean = 60.0;
      };
      {
        Farm.ws_life = Families.geometric_increasing ~lifespan:40.0;
        ws_presence_mean = 30.0;
      };
    ]
  in
  let r =
    Farm.run { base_config with Farm.workstations = fleet; total_work = 300.0 }
      ~seed:21L
  in
  Alcotest.(check bool) "finished" true r.Farm.finished;
  Alcotest.(check int) "three reports" 3 (List.length r.Farm.per_workstation)

let test_validation () =
  List.iter
    (fun cfg ->
      match Farm.run cfg ~seed:1L with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "invalid config accepted")
    [
      { base_config with Farm.c = 0.0 };
      { base_config with Farm.total_work = 0.0 };
      { base_config with Farm.max_time = 0.0 };
      { base_config with Farm.workstations = [] };
      {
        base_config with
        Farm.workstations = [ { uniform_ws with Farm.ws_presence_mean = 0.0 } ];
      };
    ]

let test_overhead_positive_when_work_done () =
  let r = Farm.run base_config ~seed:2L in
  Alcotest.(check bool) "nonzero overhead" true (r.Farm.total_overhead > 0.0)

let prop_conservation_random_configs =
  QCheck.Test.make ~name:"work conservation across random configs" ~count:25
    QCheck.(
      triple (float_range 50.0 400.0) (float_range 20.0 120.0) (int_range 1 5))
    (fun (work, presence, n_ws) ->
      let ws =
        { Farm.ws_life = Families.uniform ~lifespan:80.0; ws_presence_mean = presence }
      in
      let cfg =
        {
          Farm.c = 1.0;
          total_work = work;
          workstations = List.init n_ws (fun _ -> ws);
          policy = Farm.guideline_policy;
          max_time = 5e4;
        }
      in
      let r = Farm.run cfg ~seed:77L in
      Float.abs (r.Farm.total_done +. r.Farm.pool_remaining -. work) < 1e-6)

let prop_guideline_no_worse_than_bad_chunks =
  (* Across seeds, the guideline policy's makespan should generally beat a
     pathologically large fixed chunk. Allow rare noise reversals by
     comparing means over several seeds. *)
  QCheck.Test.make ~name:"guideline beats oversized fixed chunks on average"
    ~count:3 QCheck.unit (fun () ->
      let mean_makespan policy =
        let seeds = [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ] in
        let total =
          List.fold_left
            (fun acc seed ->
              let r =
                Farm.run { base_config with Farm.policy; total_work = 300.0 } ~seed
              in
              acc +. r.Farm.makespan)
            0.0 seeds
        in
        total /. float_of_int (List.length seeds)
      in
      mean_makespan Farm.guideline_policy
      <= mean_makespan (Farm.fixed_chunk_policy ~chunk:90.0))

let () =
  Alcotest.run "farm"
    [
      ( "farm",
        [
          Alcotest.test_case "finishes" `Quick test_farm_finishes;
          Alcotest.test_case "work conservation" `Quick test_work_conservation;
          Alcotest.test_case "deterministic" `Quick test_deterministic_in_seed;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "more stations faster" `Quick
            test_more_workstations_faster;
          Alcotest.test_case "max_time cutoff" `Quick test_max_time_cutoff;
          Alcotest.test_case "per-ws stats" `Quick
            test_per_workstation_stats_consistent;
          Alcotest.test_case "all policies complete" `Quick
            test_policies_all_complete;
          Alcotest.test_case "heterogeneous fleet" `Quick
            test_heterogeneous_fleet;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "overhead accounted" `Quick
            test_overhead_positive_when_work_done;
          QCheck_alcotest.to_alcotest prop_conservation_random_configs;
          QCheck_alcotest.to_alcotest prop_guideline_no_worse_than_bad_chunks;
        ] );
    ]
