(* Span profiler: nesting/parent bookkeeping, unbalanced-exit failure,
   attribute encoding, the Chrome trace-event shape contract (via the
   exporter's own validator, round-tripped through Jsonx), the buffer
   cap, and the Obs facade passthrough. *)

let spin () =
  (* Burn a little real time so durations are observably positive on
     coarse clocks without sleeping. *)
  let acc = ref 0.0 in
  for i = 1 to 1_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc)

(* a > (b > c), then d: two roots, three levels. *)
let build_recorder () =
  let r = Obs.Span.create () in
  Obs.Span.enter r "a";
  Obs.Span.enter r "b" ~attrs:[ ("k", Jsonx.Int 7) ];
  Obs.Span.enter r "c";
  spin ();
  Obs.Span.exit r;
  Obs.Span.exit r ~attrs:[ ("done", Jsonx.Bool true) ];
  Obs.Span.exit r;
  Obs.Span.enter r "d";
  Obs.Span.exit r;
  r

let test_nesting () =
  let r = build_recorder () in
  Alcotest.(check int) "count" 4 (Obs.Span.count r);
  Alcotest.(check int) "open_depth" 0 (Obs.Span.open_depth r);
  Alcotest.(check int) "max_depth levels" 3 (Obs.Span.max_depth r);
  let by_name name =
    List.find (fun s -> s.Obs_span.name = name) (Obs.Span.spans r)
  in
  let a = by_name "a" and b = by_name "b" and c = by_name "c" in
  let d = by_name "d" in
  Alcotest.(check int) "a is a root" (-1) a.Obs_span.parent;
  Alcotest.(check int) "d is a root" (-1) d.Obs_span.parent;
  Alcotest.(check int) "b under a" a.Obs_span.id b.Obs_span.parent;
  Alcotest.(check int) "c under b" b.Obs_span.id c.Obs_span.parent;
  Alcotest.(check int) "a depth" 0 a.Obs_span.depth;
  Alcotest.(check int) "c depth" 2 c.Obs_span.depth;
  (* Completion order is innermost-first; ids are creation order. *)
  Alcotest.(check (list int))
    "spans sorted by creation" [ 0; 1; 2; 3 ]
    (List.map (fun s -> s.Obs_span.id) (Obs.Span.spans r));
  Alcotest.(check bool)
    "child contained in parent" true
    (b.Obs_span.start_us >= a.Obs_span.start_us
    && b.Obs_span.start_us +. b.Obs_span.dur_us
       <= a.Obs_span.start_us +. a.Obs_span.dur_us +. 1e-6);
  Alcotest.(check bool)
    "durations non-negative" true
    (List.for_all (fun s -> s.Obs_span.dur_us >= 0.0) (Obs.Span.spans r))

let test_unbalanced_exit () =
  let r = Obs.Span.create () in
  Alcotest.check_raises "exit on empty stack"
    (Invalid_argument "Obs_span.exit: no open span") (fun () ->
      Obs.Span.exit r);
  Obs.Span.enter r "only";
  Obs.Span.exit r;
  Alcotest.check_raises "exit after balance restored"
    (Invalid_argument "Obs_span.exit: no open span") (fun () ->
      Obs.Span.exit r)

let test_attrs () =
  let r = build_recorder () in
  let b =
    List.find (fun s -> s.Obs_span.name = "b") (Obs.Span.spans r)
  in
  (* Enter attrs first, exit attrs appended. *)
  Alcotest.(check bool)
    "attrs in order" true
    (b.Obs_span.attrs
    = [ ("k", Jsonx.Int 7); ("done", Jsonx.Bool true) ]);
  (* And they surface under args in the Chrome export, with depth. *)
  let doc = Obs.Span.to_chrome_json r in
  let events =
    match Jsonx.member "traceEvents" doc with
    | Some (Jsonx.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let ev_b =
    List.find
      (fun ev -> Jsonx.member "name" ev = Some (Jsonx.String "b"))
      events
  in
  let args =
    match Jsonx.member "args" ev_b with
    | Some a -> a
    | None -> Alcotest.fail "no args"
  in
  Alcotest.(check bool)
    "depth in args" true
    (Jsonx.member "depth" args = Some (Jsonx.Int 1));
  Alcotest.(check bool)
    "attr k in args" true
    (Jsonx.member "k" args = Some (Jsonx.Int 7));
  Alcotest.(check bool)
    "attr done in args" true
    (Jsonx.member "done" args = Some (Jsonx.Bool true))

let test_chrome_roundtrip () =
  let r = build_recorder () in
  let doc = Obs.Span.to_chrome_json r in
  match Jsonx.of_string (Jsonx.to_string doc) with
  | Error e -> Alcotest.failf "chrome JSON does not re-parse: %s" e
  | Ok j -> (
      Alcotest.(check bool) "round-trip exact" true (j = doc);
      match Obs_span.validate_chrome j with
      | Error e -> Alcotest.failf "validate_chrome: %s" e
      | Ok (events, depth) ->
          Alcotest.(check int) "events" 4 events;
          Alcotest.(check int) "depth levels" 3 depth)

let test_validate_rejects () =
  List.iter
    (fun (label, j) ->
      match Obs_span.validate_chrome j with
      | Ok _ -> Alcotest.failf "accepted %s" label
      | Error _ -> ())
    [
      ("bare object", Jsonx.Obj []);
      ("traceEvents not a list", Jsonx.Obj [ ("traceEvents", Jsonx.Int 1) ]);
      ( "event without ph",
        Jsonx.Obj
          [
            ( "traceEvents",
              Jsonx.List
                [ Jsonx.Obj [ ("name", Jsonx.String "x") ] ] );
          ] );
    ]

let test_max_spans_cap () =
  let r = Obs.Span.create ~max_spans:3 () in
  for i = 1 to 5 do
    Obs.Span.record r (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "stored at cap" 3 (Obs.Span.count r);
  Alcotest.(check int) "dropped the rest" 2 (Obs.Span.dropped r)

let test_record_closes_on_exception () =
  let r = Obs.Span.create () in
  (try Obs.Span.record r "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "stack rebalanced" 0 (Obs.Span.open_depth r);
  Alcotest.(check int) "span still completed" 1 (Obs.Span.count r)

let test_obs_facade () =
  (* Disabled obs: Obs.span is a passthrough and records nothing. *)
  let x = Obs.span Obs.disabled "nope" (fun () -> 41 + 1) in
  Alcotest.(check int) "passthrough result" 42 x;
  Alcotest.(check bool)
    "disabled has no recorder" true
    (Obs.span_recorder Obs.disabled = None);
  (* Enabled: the same call lands in the recorder. *)
  let r = Obs.Span.create () in
  let obs = Obs.create ~spans:r () in
  Alcotest.(check bool) "spans imply instrumented" true (Obs.instrumented obs);
  let y = Obs.span obs "yep" (fun () -> 7) in
  Alcotest.(check int) "enabled result" 7 y;
  Alcotest.(check int) "span recorded" 1 (Obs.Span.count r)

let test_profiled_plan_nests () =
  (* The wired instrumentation: a profiled Guideline.plan must produce
     >= 3 nesting levels (guideline.plan > plan.search > plan.evaluate >
     recurrence.generate) and a clean chrome export. *)
  let r = Obs.Span.create () in
  let obs = Obs.create ~spans:r () in
  let lf = Families.uniform ~lifespan:100.0 in
  let (_ : Guideline.result) = Guideline.plan ~obs lf ~c:1.0 in
  Alcotest.(check bool) "closed out" true (Obs.Span.open_depth r = 0);
  Alcotest.(check bool)
    "at least 3 levels" true
    (Obs.Span.max_depth r >= 3);
  match Obs_span.validate_chrome (Obs.Span.to_chrome_json r) with
  | Error e -> Alcotest.failf "validate_chrome: %s" e
  | Ok (events, depth) ->
      Alcotest.(check bool) "many events" true (events = Obs.Span.count r);
      Alcotest.(check bool) "export depth agrees" true
        (depth = Obs.Span.max_depth r)

let test_span_tree () =
  let r = build_recorder () in
  let tree = Trace_report.span_tree (Obs.Span.spans r) in
  Alcotest.(check (list string))
    "roots in first-seen order" [ "a"; "d" ]
    (List.map (fun n -> n.Trace_report.sn_name) tree);
  let a = List.hd tree in
  Alcotest.(check int) "a count" 1 a.Trace_report.sn_count;
  let b = List.hd a.Trace_report.sn_children in
  Alcotest.(check (list string))
    "b's child" [ "c" ]
    (List.map
       (fun n -> n.Trace_report.sn_name)
       b.Trace_report.sn_children);
  (* self = total - children, never negative. *)
  let rec check_self n =
    let child_total =
      List.fold_left
        (fun acc ch -> acc +. ch.Trace_report.sn_total_us)
        0.0 n.Trace_report.sn_children
    in
    Alcotest.(check bool)
      (n.Trace_report.sn_name ^ " self consistent")
      true
      (n.Trace_report.sn_self_us >= 0.0
      && n.Trace_report.sn_self_us
         <= n.Trace_report.sn_total_us -. child_total +. 1e-6);
    List.iter check_self n.Trace_report.sn_children
  in
  List.iter check_self tree

let () =
  Alcotest.run "span"
    [
      ( "recorder",
        [
          Alcotest.test_case "nesting and parents" `Quick test_nesting;
          Alcotest.test_case "unbalanced exit raises" `Quick
            test_unbalanced_exit;
          Alcotest.test_case "buffer cap drops, not grows" `Quick
            test_max_spans_cap;
          Alcotest.test_case "record closes on exception" `Quick
            test_record_closes_on_exception;
        ] );
      ( "chrome export",
        [
          Alcotest.test_case "attribute encoding" `Quick test_attrs;
          Alcotest.test_case "round-trip + validator" `Quick
            test_chrome_roundtrip;
          Alcotest.test_case "validator rejects wrong shapes" `Quick
            test_validate_rejects;
        ] );
      ( "integration",
        [
          Alcotest.test_case "Obs facade passthrough" `Quick test_obs_facade;
          Alcotest.test_case "profiled plan nests >= 3 levels" `Quick
            test_profiled_plan_nests;
          Alcotest.test_case "span tree aggregation" `Quick test_span_tree;
        ] );
    ]
