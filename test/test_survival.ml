let g () = Prng.create ~seed:7L

let test_estimate_is_valid_life_function () =
  let rng = g () in
  let ds =
    Array.init 500 (fun _ ->
        Owner_model.sample (Owner_model.Uniform_absence { max = 20.0 }) rng)
  in
  let e = Survival.of_durations ds in
  Alcotest.(check (float 1e-6)) "p(0) = 1" 1.0
    (Life_function.eval e.Survival.life 0.0);
  Alcotest.(check bool) "monotone" true
    (Life_function.is_decreasing_on_grid e.Survival.life);
  Alcotest.(check int) "observed count" 500 e.Survival.n_observed;
  Alcotest.(check int) "no censored" 0 e.Survival.n_censored

let test_estimate_reaches_zero () =
  let rng = g () in
  let ds =
    Array.init 300 (fun _ ->
        Owner_model.sample (Owner_model.Exponential_absence { mean = 5.0 }) rng)
  in
  let e = Survival.of_durations ds in
  match Life_function.support e.Survival.life with
  | Life_function.Bounded l ->
      Alcotest.(check (float 1e-9)) "p(L) = 0" 0.0
        (Life_function.eval e.Survival.life l)
  | Life_function.Unbounded -> Alcotest.fail "expected bounded estimate"

let test_estimate_close_to_truth_uniform () =
  let rng = g () in
  let truth = Families.uniform ~lifespan:20.0 in
  let ds =
    Array.init 4000 (fun _ ->
        Owner_model.sample (Owner_model.Uniform_absence { max = 20.0 }) rng)
  in
  let e = Survival.of_durations ds in
  let rmse = Survival.survival_rmse e ~truth in
  Alcotest.(check bool) (Printf.sprintf "rmse %.4f < 0.03" rmse) true
    (rmse < 0.03)

let test_estimate_close_to_truth_exponential () =
  let rng = g () in
  let truth = Families.exponential ~rate:0.2 in
  let ds =
    Array.init 4000 (fun _ ->
        Owner_model.sample (Owner_model.Exponential_absence { mean = 5.0 }) rng)
  in
  let e = Survival.of_durations ds in
  let rmse = Survival.survival_rmse e ~truth in
  Alcotest.(check bool) (Printf.sprintf "rmse %.4f < 0.03" rmse) true
    (rmse < 0.03)

let test_censored_estimate_unbiased () =
  (* With right-censoring at the 60% point, Kaplan–Meier should still track
     the truth where data exist. *)
  let rng = g () in
  let truth = Families.exponential ~rate:0.2 in
  let obs =
    Owner_model.collect ~censor_at:8.0
      (Owner_model.Exponential_absence { mean = 5.0 })
      rng ~n:4000
  in
  let e = Survival.of_observations obs in
  Alcotest.(check bool) "has censored" true (e.Survival.n_censored > 0);
  (* Compare at a point well inside the observed range. *)
  Alcotest.(check (float 0.03)) "p(4) tracks truth"
    (Life_function.eval truth 4.0)
    (Life_function.eval e.Survival.life 4.0)

let test_schedulable_end_to_end () =
  (* The whole point: an estimated life function must be consumable by the
     guideline scheduler. *)
  let rng = g () in
  let ds =
    Array.init 2000 (fun _ ->
        Owner_model.sample (Owner_model.Uniform_absence { max = 50.0 }) rng)
  in
  let e = Survival.of_durations ds in
  let r = Guideline.plan e.Survival.life ~c:1.0 in
  Alcotest.(check bool) "positive expected work" true
    (r.Guideline.expected_work > 0.0);
  Alcotest.(check bool) "multiple periods" true
    (Schedule.num_periods r.Guideline.schedule > 1)

let test_small_sample () =
  let e = Survival.of_durations [| 3.0; 1.0; 4.0; 1.5; 9.0 |] in
  Alcotest.(check bool) "valid" true
    (Life_function.is_decreasing_on_grid e.Survival.life)

let test_ties_handled () =
  let e = Survival.of_durations [| 2.0; 2.0; 2.0; 5.0; 5.0 |] in
  Alcotest.(check bool) "valid with ties" true
    (Life_function.is_decreasing_on_grid e.Survival.life)

let test_empty_rejected () =
  match Survival.of_durations [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty accepted"

let test_all_censored_rejected () =
  let obs =
    Array.init 5 (fun _ -> { Owner_model.duration = 1.0; observed = false })
  in
  match Survival.of_observations obs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "all-censored accepted"

let test_knots_recorded () =
  let rng = g () in
  let ds =
    Array.init 200 (fun _ ->
        Owner_model.sample (Owner_model.Uniform_absence { max = 10.0 }) rng)
  in
  let e = Survival.of_observations ~knots:16
      (Array.map (fun d -> { Owner_model.duration = d; observed = true }) ds)
  in
  Alcotest.(check bool) "knot budget respected" true
    (Array.length e.Survival.knots <= 16 + 3)

let prop_estimates_always_schedulable =
  QCheck.Test.make ~name:"every estimate is a schedulable life function"
    ~count:15
    QCheck.(pair (int_range 20 500) (float_range 5.0 50.0))
    (fun (n, max) ->
      let rng = Prng.create ~seed:(Int64.of_int (n * 31)) in
      let ds =
        Array.init n (fun _ ->
            Owner_model.sample (Owner_model.Uniform_absence { max }) rng)
      in
      let e = Survival.of_durations ds in
      let horizon = Life_function.horizon e.Survival.life in
      let c = 0.02 *. horizon in
      let r = Guideline.plan e.Survival.life ~c in
      r.Guideline.expected_work >= 0.0)

let () =
  Alcotest.run "survival"
    [
      ( "survival",
        [
          Alcotest.test_case "valid life function" `Quick
            test_estimate_is_valid_life_function;
          Alcotest.test_case "reaches zero" `Quick test_estimate_reaches_zero;
          Alcotest.test_case "tracks uniform truth" `Quick
            test_estimate_close_to_truth_uniform;
          Alcotest.test_case "tracks exponential truth" `Quick
            test_estimate_close_to_truth_exponential;
          Alcotest.test_case "censored unbiased" `Quick
            test_censored_estimate_unbiased;
          Alcotest.test_case "schedulable end-to-end" `Quick
            test_schedulable_end_to_end;
          Alcotest.test_case "small sample" `Quick test_small_sample;
          Alcotest.test_case "ties" `Quick test_ties_handled;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "all censored rejected" `Quick
            test_all_censored_rejected;
          Alcotest.test_case "knot budget" `Quick test_knots_recorded;
          QCheck_alcotest.to_alcotest prop_estimates_always_schedulable;
        ] );
    ]
