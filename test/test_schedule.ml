let feq ?(eps = 1e-12) a b = Alcotest.(check (float eps)) "value" a b

let lf_uniform = Families.uniform ~lifespan:10.0

let test_of_periods_valid () =
  let s = Schedule.of_periods [| 3.0; 2.0; 1.0 |] in
  Alcotest.(check int) "count" 3 (Schedule.num_periods s);
  feq 3.0 (Schedule.period s 0);
  feq 1.0 (Schedule.period s 2)

let test_of_periods_rejects_empty () =
  match Schedule.of_periods [||] with
  | exception Schedule.Invalid_schedule _ -> ()
  | _ -> Alcotest.fail "expected Invalid_schedule"

let test_of_periods_rejects_nonpositive () =
  (match Schedule.of_periods [| 1.0; 0.0 |] with
  | exception Schedule.Invalid_schedule _ -> ()
  | _ -> Alcotest.fail "zero period accepted");
  (match Schedule.of_periods [| -1.0 |] with
  | exception Schedule.Invalid_schedule _ -> ()
  | _ -> Alcotest.fail "negative period accepted");
  match Schedule.of_periods [| Float.nan |] with
  | exception Schedule.Invalid_schedule _ -> ()
  | _ -> Alcotest.fail "NaN period accepted"

let test_periods_returns_copy () =
  let s = Schedule.of_periods [| 1.0; 2.0 |] in
  let p = Schedule.periods s in
  p.(0) <- 99.0;
  feq 1.0 (Schedule.period s 0)

let test_completion_times () =
  let s = Schedule.of_periods [| 1.0; 2.0; 3.0 |] in
  let t = Schedule.completion_times s in
  feq 1.0 t.(0);
  feq 3.0 t.(1);
  feq 6.0 t.(2);
  feq 6.0 (Schedule.total_duration s)

let test_positive_sub () =
  feq 2.0 (Schedule.positive_sub 3.0 1.0);
  feq 0.0 (Schedule.positive_sub 1.0 3.0);
  feq 0.0 (Schedule.positive_sub 1.0 1.0)

let test_work_capacity () =
  (* c = 1: (3-1) + (0.5 ⊖ 1) + (2-1) = 3 *)
  let s = Schedule.of_periods [| 3.0; 0.5; 2.0 |] in
  feq 3.0 (Schedule.work_capacity ~c:1.0 s)

let test_expected_work_by_hand () =
  (* Uniform L=10, c=1, S = [4; 3]:
     E = (4-1)(1 - 4/10) + (3-1)(1 - 7/10) = 3*0.6 + 2*0.3 = 2.4. *)
  let s = Schedule.of_list [ 4.0; 3.0 ] in
  feq 2.4 (Schedule.expected_work ~c:1.0 lf_uniform s)

let test_expected_work_positive_subtraction () =
  (* A period of length <= c contributes nothing but still consumes time. *)
  let s_short = Schedule.of_list [ 0.5; 4.0 ] in
  (* E = 0 + (4-1)*(1 - 4.5/10) = 3 * 0.55 = 1.65 *)
  feq 1.65 (Schedule.expected_work ~c:1.0 lf_uniform s_short)

let test_expected_work_beyond_horizon_is_zero () =
  let s = Schedule.of_list [ 20.0 ] in
  feq 0.0 (Schedule.expected_work ~c:1.0 lf_uniform s)

let test_expected_work_rejects_negative_c () =
  let s = Schedule.of_list [ 1.0 ] in
  match Schedule.expected_work ~c:(-1.0) lf_uniform s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_expected_work_detail_sums () =
  let s = Schedule.of_list [ 4.0; 3.0; 2.0 ] in
  let detail = Schedule.expected_work_detail ~c:1.0 lf_uniform s in
  let total = Array.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 detail in
  feq ~eps:1e-12 (Schedule.expected_work ~c:1.0 lf_uniform s) total

let test_productive_normal_form_merges () =
  (* [0.5; 0.4; 3.0] with c = 1: the two short periods merge forward into
     the third: [3.9]. *)
  let s = Schedule.of_list [ 0.5; 0.4; 3.0 ] in
  let s' = Schedule.productive_normal_form ~c:1.0 s in
  Alcotest.(check int) "merged to one" 1 (Schedule.num_periods s');
  feq 3.9 (Schedule.period s' 0)

let test_productive_normal_form_keeps_last () =
  (* Trailing short period stays (Prop 2.1 exempts the last period). *)
  let s = Schedule.of_list [ 3.0; 0.5 ] in
  let s' = Schedule.productive_normal_form ~c:1.0 s in
  Alcotest.(check int) "two periods" 2 (Schedule.num_periods s');
  feq 0.5 (Schedule.period s' 1)

let test_productive_normal_form_no_change () =
  let s = Schedule.of_list [ 3.0; 2.0 ] in
  Alcotest.(check bool) "already productive unchanged" true
    (Schedule.equal s (Schedule.productive_normal_form ~c:1.0 s))

let test_is_productive () =
  Alcotest.(check bool) "productive" true
    (Schedule.is_productive ~c:1.0 (Schedule.of_list [ 2.0; 3.0; 0.5 ]));
  Alcotest.(check bool) "unproductive inner" false
    (Schedule.is_productive ~c:1.0 (Schedule.of_list [ 2.0; 0.5; 3.0 ]))

let test_truncate_after () =
  let s = Schedule.of_list [ 2.0; 3.0; 4.0 ] in
  (match Schedule.truncate_after s ~duration:5.5 with
  | Some s' ->
      Alcotest.(check int) "keeps two" 2 (Schedule.num_periods s')
  | None -> Alcotest.fail "expected a prefix");
  (match Schedule.truncate_after s ~duration:1.0 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None");
  match Schedule.truncate_after s ~duration:9.0 with
  | Some s' -> Alcotest.(check int) "keeps all" 3 (Schedule.num_periods s')
  | None -> Alcotest.fail "expected full schedule"

let test_append () =
  let s = Schedule.append (Schedule.of_list [ 1.0 ]) 2.0 in
  Alcotest.(check int) "two periods" 2 (Schedule.num_periods s);
  match Schedule.append s (-1.0) with
  | exception Schedule.Invalid_schedule _ -> ()
  | _ -> Alcotest.fail "negative append accepted"

let test_equal () =
  let a = Schedule.of_list [ 1.0; 2.0 ] in
  let b = Schedule.of_list [ 1.0; 2.0 +. 1e-12 ] in
  let c = Schedule.of_list [ 1.0; 2.1 ] in
  Alcotest.(check bool) "equal within tol" true (Schedule.equal a b);
  Alcotest.(check bool) "different" false (Schedule.equal a c);
  Alcotest.(check bool) "different lengths" false
    (Schedule.equal a (Schedule.of_list [ 1.0 ]))

(* --- property tests -------------------------------------------------- *)

let gen_periods =
  QCheck.(array_of_size Gen.(int_range 1 20) (float_range 0.01 5.0))

let prop_normal_form_never_decreases_E =
  (* Proposition 2.1: the transformation can only improve expected work,
     for any life function. *)
  QCheck.Test.make ~name:"productive normal form never decreases E (Prop 2.1)"
    ~count:300 gen_periods (fun ts ->
      let s = Schedule.of_periods ts in
      let s' = Schedule.productive_normal_form ~c:1.0 s in
      let lfs =
        [
          lf_uniform;
          Families.geometric_decreasing ~a:1.3;
          Families.geometric_increasing ~lifespan:15.0;
          Families.polynomial ~d:3 ~lifespan:25.0;
        ]
      in
      List.for_all
        (fun lf ->
          Schedule.expected_work ~c:1.0 lf s'
          >= Schedule.expected_work ~c:1.0 lf s -. 1e-12)
        lfs)

let prop_normal_form_is_productive =
  QCheck.Test.make ~name:"normal form satisfies Prop 2.1 structure" ~count:300
    gen_periods (fun ts ->
      let s' = Schedule.productive_normal_form ~c:1.0 (Schedule.of_periods ts) in
      Schedule.is_productive ~c:1.0 s')

let prop_expected_work_le_capacity =
  QCheck.Test.make ~name:"E(S;p) <= work capacity" ~count:300 gen_periods
    (fun ts ->
      let s = Schedule.of_periods ts in
      Schedule.expected_work ~c:1.0 lf_uniform s
      <= Schedule.work_capacity ~c:1.0 s +. 1e-12)

let prop_expected_work_monotone_in_p =
  (* Pointwise larger survival can only increase expected work. *)
  QCheck.Test.make ~name:"E monotone in the life function" ~count:300
    gen_periods (fun ts ->
      let s = Schedule.of_periods ts in
      let lo = Families.uniform ~lifespan:10.0 in
      let hi = Families.uniform ~lifespan:20.0 in
      Schedule.expected_work ~c:1.0 hi s
      >= Schedule.expected_work ~c:1.0 lo s -. 1e-12)

let () =
  Alcotest.run "schedule"
    [
      ( "construction",
        [
          Alcotest.test_case "valid periods" `Quick test_of_periods_valid;
          Alcotest.test_case "rejects empty" `Quick test_of_periods_rejects_empty;
          Alcotest.test_case "rejects nonpositive" `Quick
            test_of_periods_rejects_nonpositive;
          Alcotest.test_case "defensive copies" `Quick test_periods_returns_copy;
          Alcotest.test_case "completion times" `Quick test_completion_times;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "truncate_after" `Quick test_truncate_after;
        ] );
      ( "expected-work",
        [
          Alcotest.test_case "positive subtraction" `Quick test_positive_sub;
          Alcotest.test_case "work capacity" `Quick test_work_capacity;
          Alcotest.test_case "hand-computed E" `Quick test_expected_work_by_hand;
          Alcotest.test_case "short period contributes 0" `Quick
            test_expected_work_positive_subtraction;
          Alcotest.test_case "beyond horizon is 0" `Quick
            test_expected_work_beyond_horizon_is_zero;
          Alcotest.test_case "negative c rejected" `Quick
            test_expected_work_rejects_negative_c;
          Alcotest.test_case "detail sums to E" `Quick
            test_expected_work_detail_sums;
        ] );
      ( "prop-2.1",
        [
          Alcotest.test_case "merges short periods" `Quick
            test_productive_normal_form_merges;
          Alcotest.test_case "keeps last short period" `Quick
            test_productive_normal_form_keeps_last;
          Alcotest.test_case "no change when productive" `Quick
            test_productive_normal_form_no_change;
          Alcotest.test_case "is_productive" `Quick test_is_productive;
          QCheck_alcotest.to_alcotest prop_normal_form_never_decreases_E;
          QCheck_alcotest.to_alcotest prop_normal_form_is_productive;
          QCheck_alcotest.to_alcotest prop_expected_work_le_capacity;
          QCheck_alcotest.to_alcotest prop_expected_work_monotone_in_p;
        ] );
    ]
