let g () = Prng.create ~seed:42L

let test_samples_positive () =
  let rng = g () in
  List.iter
    (fun model ->
      for _ = 1 to 1000 do
        let d = Owner_model.sample model rng in
        if d <= 0.0 then Alcotest.failf "nonpositive sample %g" d
      done)
    [
      Owner_model.Exponential_absence { mean = 10.0 };
      Owner_model.Uniform_absence { max = 20.0 };
      Owner_model.Weibull_absence { shape = 2.0; scale = 10.0 };
      Owner_model.Coffee_break { typical = 5.0; spread = 2.0 };
      Owner_model.Day_night
        { short_mean = 5.0; long_mean = 100.0; long_fraction = 0.3 };
    ]

let test_exponential_mean () =
  let rng = g () in
  let n = 100_000 in
  let xs =
    Array.init n (fun _ ->
        Owner_model.sample (Owner_model.Exponential_absence { mean = 7.0 }) rng)
  in
  Alcotest.(check (float 0.15)) "mean" 7.0 (Stats.mean xs)

let test_uniform_bounded () =
  let rng = g () in
  for _ = 1 to 10_000 do
    let d = Owner_model.sample (Owner_model.Uniform_absence { max = 3.0 }) rng in
    if d > 3.0 then Alcotest.failf "sample %g beyond max" d
  done

let test_coffee_break_concentrated () =
  let rng = g () in
  let n = 50_000 in
  let xs =
    Array.init n (fun _ ->
        Owner_model.sample
          (Owner_model.Coffee_break { typical = 10.0; spread = 2.0 })
          rng)
  in
  Alcotest.(check (float 0.2)) "mean near typical" 10.0 (Stats.mean xs);
  Alcotest.(check bool) "stddev near spread" true
    (Float.abs ((Stats.summarize xs).Stats.stddev -. 2.0) < 0.3)

let test_day_night_bimodal_mean () =
  let rng = g () in
  let n = 100_000 in
  let model =
    Owner_model.Day_night { short_mean = 5.0; long_mean = 100.0; long_fraction = 0.25 }
  in
  let xs = Array.init n (fun _ -> Owner_model.sample model rng) in
  (* mean = 0.75*5 + 0.25*100 = 28.75 *)
  Alcotest.(check (float 1.0)) "mixture mean" 28.75 (Stats.mean xs)

let test_collect_censoring () =
  let rng = g () in
  let obs =
    Owner_model.collect ~censor_at:5.0
      (Owner_model.Exponential_absence { mean = 5.0 })
      rng ~n:10_000
  in
  Alcotest.(check int) "count" 10_000 (Array.length obs);
  let censored =
    Array.fold_left
      (fun acc o -> if o.Owner_model.observed then acc else acc + 1)
      0 obs
  in
  (* Pr(X > 5) = e^{-1} ~ 0.368 for Exp(mean 5). *)
  let fraction = float_of_int censored /. 10_000.0 in
  Alcotest.(check (float 0.02)) "censored fraction" (exp (-1.0)) fraction;
  Array.iter
    (fun o ->
      if not o.Owner_model.observed then
        Alcotest.(check (float 0.0)) "censored at limit" 5.0
          o.Owner_model.duration
      else if o.Owner_model.duration > 5.0 then
        Alcotest.fail "observed duration beyond censor limit")
    obs

let test_collect_validation () =
  let rng = g () in
  match
    Owner_model.collect (Owner_model.Uniform_absence { max = 1.0 }) rng ~n:0
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 0 accepted"

let test_true_life_functions () =
  (match Owner_model.true_life_function (Owner_model.Exponential_absence { mean = 4.0 }) with
  | Some lf ->
      Alcotest.(check (float 1e-9)) "exp survival" (exp (-0.5))
        (Life_function.eval lf 2.0)
  | None -> Alcotest.fail "expected exponential truth");
  (match Owner_model.true_life_function (Owner_model.Uniform_absence { max = 8.0 }) with
  | Some lf ->
      Alcotest.(check (float 1e-9)) "uniform survival" 0.75
        (Life_function.eval lf 2.0)
  | None -> Alcotest.fail "expected uniform truth");
  Alcotest.(check bool) "mixtures have no closed truth" true
    (Owner_model.true_life_function
       (Owner_model.Day_night { short_mean = 1.0; long_mean = 2.0; long_fraction = 0.5 })
    = None)

let test_sample_validation () =
  let rng = g () in
  (match Owner_model.sample (Owner_model.Exponential_absence { mean = 0.0 }) rng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mean = 0 accepted");
  match
    Owner_model.sample
      (Owner_model.Day_night { short_mean = 1.0; long_mean = 2.0; long_fraction = 1.5 })
      rng
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fraction > 1 accepted"

let prop_empirical_survival_matches_truth =
  QCheck.Test.make
    ~name:"empirical survival of samples matches the declared truth" ~count:10
    QCheck.(float_range 2.0 20.0)
    (fun mean ->
      let model = Owner_model.Exponential_absence { mean } in
      match Owner_model.true_life_function model with
      | None -> false
      | Some truth ->
          let rng = Prng.create ~seed:123L in
          let n = 20_000 in
          let xs = Array.init n (fun _ -> Owner_model.sample model rng) in
          let t = mean in
          let emp =
            float_of_int
              (Array.fold_left (fun a x -> if x > t then a + 1 else a) 0 xs)
            /. float_of_int n
          in
          Float.abs (emp -. Life_function.eval truth t) < 0.02)

let () =
  Alcotest.run "owner_model"
    [
      ( "owner_model",
        [
          Alcotest.test_case "samples positive" `Quick test_samples_positive;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "uniform bounded" `Quick test_uniform_bounded;
          Alcotest.test_case "coffee break concentrated" `Quick
            test_coffee_break_concentrated;
          Alcotest.test_case "day-night mean" `Quick test_day_night_bimodal_mean;
          Alcotest.test_case "censoring" `Quick test_collect_censoring;
          Alcotest.test_case "collect validation" `Quick test_collect_validation;
          Alcotest.test_case "true life functions" `Quick
            test_true_life_functions;
          Alcotest.test_case "sample validation" `Quick test_sample_validation;
          QCheck_alcotest.to_alcotest prop_empirical_survival_matches_truth;
        ] );
    ]
