(* The Farm's Serialized link model (experiment E14's machinery): the
   paper's architecture-independent overhead assumption vs a master whose
   link admits one dispatch at a time. *)

let ws =
  { Farm.ws_life = Families.uniform ~lifespan:100.0; ws_presence_mean = 40.0 }

let config n =
  {
    Farm.c = 2.0;
    total_work = 400.0;
    workstations = List.init n (fun _ -> ws);
    policy = Farm.guideline_policy;
    max_time = 1e6;
  }

let test_single_station_unaffected () =
  (* With one workstation there is never contention: identical runs. *)
  let a = Farm.run ~link:Farm.Unlimited (config 1) ~seed:3L in
  let b = Farm.run ~link:Farm.Serialized (config 1) ~seed:3L in
  Alcotest.(check (float 1e-9)) "same makespan" a.Farm.makespan b.Farm.makespan;
  Alcotest.(check (float 1e-9)) "same lost" a.Farm.total_lost b.Farm.total_lost

let test_serialized_never_faster () =
  List.iter
    (fun seed ->
      let a = Farm.run ~link:Farm.Unlimited (config 6) ~seed in
      let b = Farm.run ~link:Farm.Serialized (config 6) ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: serialized %.1f >= unlimited %.1f" seed
           b.Farm.makespan a.Farm.makespan)
        true
        (b.Farm.makespan >= a.Farm.makespan -. 1e-9))
    [ 1L; 2L; 3L; 4L; 5L ]

let test_serialized_conserves_work () =
  let r = Farm.run ~link:Farm.Serialized (config 6) ~seed:11L in
  Alcotest.(check (float 1e-6)) "conservation" 400.0
    (r.Farm.total_done +. r.Farm.pool_remaining)

let test_serialized_finishes () =
  let r = Farm.run ~link:Farm.Serialized (config 4) ~seed:7L in
  Alcotest.(check bool) "finished" true r.Farm.finished

let test_default_is_unlimited () =
  let a = Farm.run (config 4) ~seed:9L in
  let b = Farm.run ~link:Farm.Unlimited (config 4) ~seed:9L in
  Alcotest.(check (float 0.0)) "defaults match" a.Farm.makespan b.Farm.makespan

let test_contention_grows_with_fleet () =
  (* The serialized/unlimited makespan gap should widen (weakly) with the
     fleet when c is a large fraction of the period length. Use a mean over
     seeds to de-noise. *)
  let mean_gap n =
    let seeds = [ 1L; 2L; 3L; 4L; 5L; 6L ] in
    let total =
      List.fold_left
        (fun acc seed ->
          let a = Farm.run ~link:Farm.Unlimited (config n) ~seed in
          let b = Farm.run ~link:Farm.Serialized (config n) ~seed in
          acc +. (b.Farm.makespan /. Float.max 1e-9 a.Farm.makespan))
        0.0 seeds
    in
    total /. 6.0
  in
  let g2 = mean_gap 2 and g12 = mean_gap 12 in
  Alcotest.(check bool)
    (Printf.sprintf "gap(12)=%.3f >= gap(2)=%.3f - noise" g12 g2)
    true
    (g12 >= g2 -. 0.05)

let prop_serialized_conservation =
  QCheck.Test.make ~name:"serialized link conserves work" ~count:15
    QCheck.(pair (int_range 1 8) (int_range 1 500))
    (fun (n, seed) ->
      let r =
        Farm.run ~link:Farm.Serialized (config n) ~seed:(Int64.of_int seed)
      in
      Float.abs (r.Farm.total_done +. r.Farm.pool_remaining -. 400.0) < 1e-6)

let () =
  Alcotest.run "link_contention"
    [
      ( "link_contention",
        [
          Alcotest.test_case "single station unaffected" `Quick
            test_single_station_unaffected;
          Alcotest.test_case "serialized never faster" `Quick
            test_serialized_never_faster;
          Alcotest.test_case "conservation" `Quick
            test_serialized_conserves_work;
          Alcotest.test_case "finishes" `Quick test_serialized_finishes;
          Alcotest.test_case "default unlimited" `Quick
            test_default_is_unlimited;
          Alcotest.test_case "contention grows with fleet" `Quick
            test_contention_grows_with_fleet;
          QCheck_alcotest.to_alcotest prop_serialized_conservation;
        ] );
    ]
