let feq ?(eps = 1e-12) a b = Alcotest.(check (float eps)) "value" a b
let s = Schedule.of_list [ 5.0; 4.0; 3.0 ] (* ends at 5, 9, 12 *)
let c = 1.0

let test_never_reclaimed () =
  let o = Episode.run s ~c ~reclaim_at:100.0 in
  feq 9.0 o.Episode.work_done;
  (* (5-1)+(4-1)+(3-1) *)
  feq 0.0 o.Episode.work_lost;
  feq 3.0 o.Episode.overhead;
  Alcotest.(check int) "periods" 3 o.Episode.periods_completed;
  Alcotest.(check bool) "not interrupted" false o.Episode.interrupted;
  feq 12.0 o.Episode.elapsed

let test_reclaimed_mid_first_period () =
  let o = Episode.run s ~c ~reclaim_at:3.0 in
  feq 0.0 o.Episode.work_done;
  (* 3 units elapsed, c = 1 of them overhead: 2 productive lost *)
  feq 2.0 o.Episode.work_lost;
  feq 1.0 o.Episode.overhead;
  Alcotest.(check bool) "interrupted" true o.Episode.interrupted;
  feq 3.0 o.Episode.elapsed

let test_reclaimed_between_periods () =
  (* Reclaim at exactly 5.0: first period completes (paper convention),
     second never starts productive work... it starts at 5.0 and the kill
     arrives at its very start. *)
  let o = Episode.run s ~c ~reclaim_at:5.0 in
  feq 4.0 o.Episode.work_done;
  feq 0.0 o.Episode.work_lost;
  Alcotest.(check int) "one period" 1 o.Episode.periods_completed;
  Alcotest.(check bool) "interrupted" true o.Episode.interrupted

let test_reclaimed_exactly_at_period_end () =
  (* Reclaim at 9.0 = end of second period: both count as completed. *)
  let o = Episode.run s ~c ~reclaim_at:9.0 in
  feq 7.0 o.Episode.work_done;
  Alcotest.(check int) "two periods" 2 o.Episode.periods_completed

let test_reclaimed_in_overhead_phase () =
  (* Reclaim at 5.5: second period started at 5, only 0.5 of it elapsed —
     that is still within the c = 1 overhead, so no productive work lost. *)
  let o = Episode.run s ~c ~reclaim_at:5.5 in
  feq 4.0 o.Episode.work_done;
  feq 0.0 o.Episode.work_lost;
  feq 1.5 o.Episode.overhead (* 1.0 for period 1 + 0.5 partial *)

let test_reclaim_at_zero () =
  let o = Episode.run s ~c ~reclaim_at:0.0 in
  feq 0.0 o.Episode.work_done;
  feq 0.0 o.Episode.work_lost;
  Alcotest.(check bool) "interrupted" true o.Episode.interrupted

let test_short_period_contributes_nothing () =
  let s' = Schedule.of_list [ 0.5; 5.0 ] in
  let o = Episode.run s' ~c ~reclaim_at:100.0 in
  feq 4.0 o.Episode.work_done;
  (* overhead: min(0.5, 1) + 1 *)
  feq 1.5 o.Episode.overhead

let test_validation () =
  (match Episode.run s ~c:(-1.0) ~reclaim_at:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative c accepted");
  match Episode.run s ~c ~reclaim_at:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative reclaim accepted"

let test_work_function_is_step () =
  (* W_S(t) is a right-continuous step function jumping at completion
     times. *)
  feq 0.0 (Episode.work_if_reclaimed_at s ~c 4.999);
  feq 4.0 (Episode.work_if_reclaimed_at s ~c 5.0);
  feq 4.0 (Episode.work_if_reclaimed_at s ~c 8.999);
  feq 7.0 (Episode.work_if_reclaimed_at s ~c 9.0);
  feq 9.0 (Episode.work_if_reclaimed_at s ~c 12.0)

let test_expected_work_is_integral_of_work_function () =
  (* E(S;p) = ∫ W_S dP = Σ_i W(T_i) ΔP — independently verify eq. 2.1 by
     integrating the step function against the uniform density. *)
  let l = 20.0 in
  let lf = Families.uniform ~lifespan:l in
  let s = Schedule.of_list [ 6.0; 5.0; 4.0 ] in
  (* Integrate W(t) * f(t) dt + W(L) * p(L) with f = 1/L, p(L) = 0. *)
  let integral =
    Quadrature.adaptive_simpson ~tol:1e-10
      (fun t -> Episode.work_if_reclaimed_at s ~c t /. l)
      ~lo:0.0 ~hi:l
  in
  feq ~eps:1e-6 (Schedule.expected_work ~c lf s) integral

let prop_work_done_le_capacity =
  QCheck.Test.make ~name:"episode work <= capacity" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 10) (float_range 0.5 10.0))
        (float_range 0.0 60.0))
    (fun (ts, reclaim_at) ->
      let s = Schedule.of_periods ts in
      let o = Episode.run s ~c:1.0 ~reclaim_at in
      o.Episode.work_done <= Schedule.work_capacity ~c:1.0 s +. 1e-9)

let prop_work_monotone_in_reclaim_time =
  QCheck.Test.make ~name:"work done is monotone in the reclaim time"
    ~count:300
    QCheck.(
      triple
        (array_of_size Gen.(int_range 1 8) (float_range 0.5 8.0))
        (float_range 0.0 40.0) (float_range 0.0 10.0))
    (fun (ts, r1, dr) ->
      let s = Schedule.of_periods ts in
      Episode.work_if_reclaimed_at s ~c:1.0 (r1 +. dr)
      >= Episode.work_if_reclaimed_at s ~c:1.0 r1 -. 1e-12)

let prop_accounting_conserves_time =
  (* Completed periods' durations + current in-flight time = elapsed. *)
  QCheck.Test.make ~name:"episode elapsed time is consistent" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 8) (float_range 0.5 8.0))
        (float_range 0.0 50.0))
    (fun (ts, reclaim_at) ->
      let s = Schedule.of_periods ts in
      let o = Episode.run s ~c:1.0 ~reclaim_at in
      if o.Episode.interrupted then Float.abs (o.Episode.elapsed -. reclaim_at) < 1e-9
      else Float.abs (o.Episode.elapsed -. Schedule.total_duration s) < 1e-9)

let () =
  Alcotest.run "episode"
    [
      ( "episode",
        [
          Alcotest.test_case "never reclaimed" `Quick test_never_reclaimed;
          Alcotest.test_case "mid first period" `Quick
            test_reclaimed_mid_first_period;
          Alcotest.test_case "between periods" `Quick
            test_reclaimed_between_periods;
          Alcotest.test_case "exactly at period end" `Quick
            test_reclaimed_exactly_at_period_end;
          Alcotest.test_case "in overhead phase" `Quick
            test_reclaimed_in_overhead_phase;
          Alcotest.test_case "reclaim at zero" `Quick test_reclaim_at_zero;
          Alcotest.test_case "short period" `Quick
            test_short_period_contributes_nothing;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "work step function" `Quick
            test_work_function_is_step;
          Alcotest.test_case "E = integral of W (eq 2.1)" `Quick
            test_expected_work_is_integral_of_work_function;
          QCheck_alcotest.to_alcotest prop_work_done_le_capacity;
          QCheck_alcotest.to_alcotest prop_work_monotone_in_reclaim_time;
          QCheck_alcotest.to_alcotest prop_accounting_conserves_time;
        ] );
    ]
