let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0 |]

let test_linear_hits_knots () =
  let ys = [| 0.0; 2.0; 1.0; 5.0; 4.0 |] in
  let ip = Interp.linear ~xs ~ys in
  Array.iteri
    (fun i x ->
      Alcotest.(check (float 1e-12)) "knot value" ys.(i) (Interp.eval ip x))
    xs

let test_linear_midpoint () =
  let ip = Interp.linear ~xs:[| 0.0; 2.0 |] ~ys:[| 0.0; 4.0 |] in
  Alcotest.(check (float 1e-12)) "midpoint" 2.0 (Interp.eval ip 1.0)

let test_linear_extrapolates () =
  let ip = Interp.linear ~xs:[| 0.0; 1.0 |] ~ys:[| 0.0; 1.0 |] in
  Alcotest.(check (float 1e-12)) "right extrapolation" 2.0 (Interp.eval ip 2.0)

let test_linear_derivative () =
  let ip = Interp.linear ~xs:[| 0.0; 1.0; 3.0 |] ~ys:[| 0.0; 2.0; 2.0 |] in
  Alcotest.(check (float 1e-12)) "slope seg 0" 2.0 (Interp.derivative ip 0.5);
  Alcotest.(check (float 1e-12)) "slope seg 1" 0.0 (Interp.derivative ip 2.0)

let test_pchip_hits_knots () =
  let ys = [| 1.0; 0.8; 0.5; 0.1; 0.0 |] in
  let ip = Interp.pchip ~xs ~ys in
  Array.iteri
    (fun i x ->
      Alcotest.(check (float 1e-10)) "knot value" ys.(i) (Interp.eval ip x))
    xs

let test_pchip_monotone_preserving () =
  (* Decreasing data: interpolant must never increase between samples. *)
  let ys = [| 1.0; 0.9; 0.4; 0.35; 0.0 |] in
  let ip = Interp.pchip ~xs ~ys in
  let prev = ref (Interp.eval ip 0.0) in
  for i = 1 to 400 do
    let x = float_of_int i /. 100.0 in
    let v = Interp.eval ip x in
    if v > !prev +. 1e-9 then
      Alcotest.failf "interpolant increases at x=%g (%g -> %g)" x !prev v;
    prev := v
  done

let test_pchip_no_overshoot () =
  (* Step-like data: cubic splines overshoot; PCHIP must stay in [0, 1]. *)
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 1.0; 1.0; 0.0; 0.0 |] in
  let ip = Interp.pchip ~xs ~ys in
  for i = 0 to 300 do
    let x = float_of_int i /. 100.0 in
    let v = Interp.eval ip x in
    if v < -1e-9 || v > 1.0 +. 1e-9 then
      Alcotest.failf "overshoot at x=%g: %g" x v
  done

let test_pchip_derivative_consistent () =
  (* The analytic derivative must match finite differences of eval. *)
  let ys = [| 1.0; 0.7; 0.5; 0.2; 0.0 |] in
  let ip = Interp.pchip ~xs ~ys in
  List.iter
    (fun x ->
      let numeric = Diff.central ~h:1e-6 (Interp.eval ip) x in
      let analytic = Interp.derivative ip x in
      Alcotest.(check (float 1e-4)) "derivative matches" numeric analytic)
    [ 0.3; 1.5; 2.2; 3.7 ]

let test_domain_and_knots () =
  let ys = [| 1.0; 0.5; 0.4; 0.2; 0.0 |] in
  let ip = Interp.pchip ~xs ~ys in
  let lo, hi = Interp.domain ip in
  Alcotest.(check (float 0.0)) "lo" 0.0 lo;
  Alcotest.(check (float 0.0)) "hi" 4.0 hi;
  Alcotest.(check int) "knot count" 5 (Array.length (Interp.knots ip))

let test_bad_grid_unsorted () =
  match Interp.linear ~xs:[| 0.0; 2.0; 1.0 |] ~ys:[| 0.0; 1.0; 2.0 |] with
  | exception Interp.Bad_grid _ -> ()
  | _ -> Alcotest.fail "expected Bad_grid"

let test_bad_grid_short () =
  match Interp.pchip ~xs:[| 0.0 |] ~ys:[| 1.0 |] with
  | exception Interp.Bad_grid _ -> ()
  | _ -> Alcotest.fail "expected Bad_grid"

let test_bad_grid_length_mismatch () =
  match Interp.linear ~xs:[| 0.0; 1.0 |] ~ys:[| 1.0 |] with
  | exception Interp.Bad_grid _ -> ()
  | _ -> Alcotest.fail "expected Bad_grid"

let test_two_point_pchip_is_linear () =
  let ip = Interp.pchip ~xs:[| 0.0; 2.0 |] ~ys:[| 0.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "line midpoint" 2.0 (Interp.eval ip 1.0)

let prop_pchip_monotone_on_random_decreasing =
  QCheck.Test.make ~name:"pchip preserves monotonicity on random survival data"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 3 12) (float_range 0.01 1.0))
    (fun raw ->
      (* Build a decreasing survival-like sequence from positive increments *)
      let n = List.length raw in
      let xs = Array.init (n + 1) float_of_int in
      let total = List.fold_left ( +. ) 0.0 raw in
      let ys = Array.make (n + 1) 1.0 in
      let acc = ref 1.0 in
      List.iteri
        (fun i d ->
          acc := !acc -. (d /. total);
          ys.(i + 1) <- Float.max 0.0 !acc)
        raw;
      let ip = Interp.pchip ~xs ~ys in
      let ok = ref true in
      let prev = ref (Interp.eval ip 0.0) in
      for i = 1 to 200 do
        let x = float_of_int n *. float_of_int i /. 200.0 in
        let v = Interp.eval ip x in
        if v > !prev +. 1e-9 then ok := false;
        prev := v
      done;
      !ok)

let () =
  Alcotest.run "interp"
    [
      ( "interp",
        [
          Alcotest.test_case "linear hits knots" `Quick test_linear_hits_knots;
          Alcotest.test_case "linear midpoint" `Quick test_linear_midpoint;
          Alcotest.test_case "linear extrapolates" `Quick
            test_linear_extrapolates;
          Alcotest.test_case "linear derivative" `Quick test_linear_derivative;
          Alcotest.test_case "pchip hits knots" `Quick test_pchip_hits_knots;
          Alcotest.test_case "pchip monotone" `Quick
            test_pchip_monotone_preserving;
          Alcotest.test_case "pchip no overshoot" `Quick test_pchip_no_overshoot;
          Alcotest.test_case "pchip derivative consistent" `Quick
            test_pchip_derivative_consistent;
          Alcotest.test_case "domain and knots" `Quick test_domain_and_knots;
          Alcotest.test_case "bad grid unsorted" `Quick test_bad_grid_unsorted;
          Alcotest.test_case "bad grid short" `Quick test_bad_grid_short;
          Alcotest.test_case "bad grid mismatch" `Quick
            test_bad_grid_length_mismatch;
          Alcotest.test_case "two-point pchip" `Quick
            test_two_point_pchip_is_linear;
          QCheck_alcotest.to_alcotest prop_pchip_monotone_on_random_decreasing;
        ] );
    ]
