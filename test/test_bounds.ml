let feq ?(eps = 1e-6) a b = Alcotest.(check (float eps)) "value" a b

(* --- exponential: everything is available in closed form -------------- *)

let test_lower_t0_exponential_closed_form () =
  (* For p = a^{-t}, p/p' = -1/ln a is constant, so the Thm 3.2 fixed point
     is explicit: sqrt(c^2/4 + c/ln a) + c/2. *)
  let a = exp 0.1 and c = 1.0 in
  let lf = Families.geometric_decreasing ~a in
  feq (Closed_forms.geo_dec_t0_lower ~a ~c) (Bounds.lower_t0 lf ~c)

let test_upper_t0_exponential_closed_form () =
  (* 2*sqrt(c^2/4 + c/ln a) + c for the convex bound. *)
  let a = exp 0.1 and c = 1.0 in
  let lf = Families.geometric_decreasing ~a in
  let expected =
    (2.0 *. sqrt ((c *. c /. 4.0) +. (c /. log a))) +. c
  in
  feq ~eps:1e-4 expected (Bounds.upper_t0_convex lf ~c)

(* --- uniform: verify against direct algebra --------------------------- *)

let test_lower_t0_uniform_algebra () =
  (* For p = 1 - t/L: -p/p' = L - t, so the fixed point solves
     t - c/2 = sqrt(c^2/4 + c(L - t)). Verify the residual vanishes. *)
  let c = 1.0 and l = 100.0 in
  let lf = Families.uniform ~lifespan:l in
  let t = Bounds.lower_t0 lf ~c in
  let residual =
    t -. (c /. 2.0) -. sqrt ((c *. c /. 4.0) +. (c *. (l -. t)))
  in
  feq ~eps:1e-6 0.0 residual;
  (* And it is close to the paper's simplified sqrt(cL) form. *)
  Alcotest.(check bool) "near sqrt(cL)" true (Float.abs (t -. 10.0) < 1.5)

(* --- bracketing of the true optimum ----------------------------------- *)

let bracket_contains lf ~c t0 =
  let lo, hi = Bounds.bracket lf ~c in
  t0 >= lo -. 1e-6 && t0 <= hi +. 1e-6

let test_bracket_contains_optimal_uniform () =
  let c = 1.0 and l = 100.0 in
  let lf = Families.uniform ~lifespan:l in
  let exact = Exact.uniform ~c ~lifespan:l in
  Alcotest.(check bool) "optimal t0 in bracket" true
    (bracket_contains lf ~c exact.Exact.t0)

let test_bracket_contains_optimal_geo_dec () =
  let a = exp 0.05 and c = 1.0 in
  let lf = Families.geometric_decreasing ~a in
  let t_star = Closed_forms.geo_dec_t_optimal ~a ~c in
  Alcotest.(check bool) "optimal t* in bracket" true
    (bracket_contains lf ~c t_star)

let test_bracket_contains_optimal_geo_inc () =
  let c = 1.0 and l = 30.0 in
  let lf = Families.geometric_increasing ~lifespan:l in
  let o = Optimizer.optimal_schedule lf ~c in
  Alcotest.(check bool) "optimizer t0 in bracket" true
    (bracket_contains lf ~c (Schedule.period o.Optimizer.schedule 0))

let test_bracket_width_factor_2ish () =
  (* §6: the bounds "usually still leave one with a factor-of-2
     uncertainty" — the bracket should not be wildly wider than that. *)
  let c = 1.0 in
  List.iter
    (fun lf ->
      let lo, hi = Bounds.bracket lf ~c in
      Alcotest.(check bool)
        (Printf.sprintf "width %s: [%g, %g]" (Life_function.name lf) lo hi)
        true
        (hi /. lo <= 4.0))
    [
      Families.uniform ~lifespan:100.0;
      Families.polynomial ~d:2 ~lifespan:100.0;
      Families.geometric_increasing ~lifespan:30.0;
    ]

let test_bracket_nonempty_always () =
  List.iter
    (fun (name, lf) ->
      let lo, hi = Bounds.bracket lf ~c:1.0 in
      Alcotest.(check bool) (name ^ " nonempty") true (lo < hi && lo > 0.0))
    (Families.all_paper_scenarios ~c:1.0)

let test_bracket_unknown_shape_falls_back () =
  (* Strip the shape certificate: the bracket must widen to the horizon. *)
  let lf =
    Life_function.make ~name:"unknown-uniform"
      ~support:(Life_function.Bounded 100.0)
      (fun t -> 1.0 -. (t /. 100.0))
  in
  let _, hi = Bounds.bracket lf ~c:1.0 in
  feq ~eps:1e-6 100.0 hi

(* --- validation ------------------------------------------------------- *)

let test_domain_guards () =
  let lf = Families.uniform ~lifespan:10.0 in
  (match Bounds.lower_t0 lf ~c:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = 0 accepted");
  match Bounds.bracket lf ~c:11.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c >= L accepted"

(* --- corollary 5.x bounds --------------------------------------------- *)

let test_cor_5_5_lower () =
  feq
    (sqrt (1.0 *. 100.0 /. 2.0) +. 0.75)
    (Bounds.lower_t0_concave_lifespan ~c:1.0 ~lifespan:100.0)

let test_cor_5_4_lower_given_m () =
  (* L/m + (m-1)c/2 with L=100, m=14, c=1 = 7.142857 + 6.5 *)
  feq
    ((100.0 /. 14.0) +. 6.5)
    (Bounds.lower_t0_concave_periods ~c:1.0 ~lifespan:100.0 ~m:14)

let test_cor_5_3_period_bound () =
  (* ceil(sqrt(200 + 0.25) + 0.5) = ceil(14.65) = 15 *)
  Alcotest.(check int) "bound" 15
    (Bounds.max_periods_concave ~c:1.0 ~lifespan:100.0)

let test_cor_5_3_validation () =
  match Bounds.max_periods_concave ~c:0.0 ~lifespan:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = 0 accepted"

let test_exact_uniform_t0_satisfies_cor_5_4 () =
  let c = 1.0 and l = 100.0 in
  let exact = Exact.uniform ~c ~lifespan:l in
  let m = Schedule.num_periods exact.Exact.schedule in
  Alcotest.(check bool) "Cor 5.4 holds with equality for uniform" true
    (exact.Exact.t0
    >= Bounds.lower_t0_concave_periods ~c ~lifespan:l ~m -. 1e-9)

let prop_lower_below_upper =
  QCheck.Test.make ~name:"lower bound <= shape upper bound" ~count:60
    QCheck.(pair (float_range 0.2 2.0) (float_range 20.0 300.0))
    (fun (c, l) ->
      let checks =
        [
          (let lf = Families.uniform ~lifespan:l in
           Bounds.lower_t0 lf ~c
           <= Float.min (Bounds.upper_t0_convex lf ~c)
                (Bounds.upper_t0_concave lf ~c)
              +. 1e-6);
          (let lf = Families.polynomial ~d:2 ~lifespan:l in
           Bounds.lower_t0 lf ~c <= Bounds.upper_t0_concave lf ~c +. 1e-6);
        ]
      in
      List.for_all Fun.id checks)

let prop_optimizer_t0_in_bracket_uniform =
  QCheck.Test.make
    ~name:"independent optimizer's t0 falls inside the Thm 3.2/3.3 bracket"
    ~count:12
    QCheck.(pair (float_range 0.5 1.5) (float_range 40.0 120.0))
    (fun (c, l) ->
      let lf = Families.uniform ~lifespan:l in
      let o = Optimizer.optimal_schedule lf ~c in
      bracket_contains lf ~c (Schedule.period o.Optimizer.schedule 0))

let () =
  Alcotest.run "bounds"
    [
      ( "fixed-points",
        [
          Alcotest.test_case "exp lower closed form" `Quick
            test_lower_t0_exponential_closed_form;
          Alcotest.test_case "exp upper closed form" `Quick
            test_upper_t0_exponential_closed_form;
          Alcotest.test_case "uniform lower algebra" `Quick
            test_lower_t0_uniform_algebra;
        ] );
      ( "bracketing",
        [
          Alcotest.test_case "contains optimal (uniform)" `Quick
            test_bracket_contains_optimal_uniform;
          Alcotest.test_case "contains optimal (geo-dec)" `Quick
            test_bracket_contains_optimal_geo_dec;
          Alcotest.test_case "contains optimal (geo-inc)" `Quick
            test_bracket_contains_optimal_geo_inc;
          Alcotest.test_case "factor-2ish width" `Quick
            test_bracket_width_factor_2ish;
          Alcotest.test_case "nonempty for all scenarios" `Quick
            test_bracket_nonempty_always;
          Alcotest.test_case "unknown shape fallback" `Quick
            test_bracket_unknown_shape_falls_back;
          Alcotest.test_case "domain guards" `Quick test_domain_guards;
        ] );
      ( "corollaries-5.x",
        [
          Alcotest.test_case "Cor 5.5 lower" `Quick test_cor_5_5_lower;
          Alcotest.test_case "Cor 5.4 lower given m" `Quick
            test_cor_5_4_lower_given_m;
          Alcotest.test_case "Cor 5.3 period bound" `Quick
            test_cor_5_3_period_bound;
          Alcotest.test_case "Cor 5.3 validation" `Quick
            test_cor_5_3_validation;
          Alcotest.test_case "uniform t0 meets Cor 5.4" `Quick
            test_exact_uniform_t0_satisfies_cor_5_4;
          QCheck_alcotest.to_alcotest prop_lower_below_upper;
          QCheck_alcotest.to_alcotest prop_optimizer_t0_in_bracket_uniform;
        ] );
    ]
