let feq ?(eps = 1e-9) a b = Alcotest.(check (float eps)) "value" a b

(* --- uniform ----------------------------------------------------------- *)

let test_uniform_periods_sum_to_lifespan () =
  let r = Exact.uniform ~c:1.0 ~lifespan:100.0 in
  feq ~eps:1e-9 100.0 (Schedule.total_duration r.Exact.schedule)

let test_uniform_arithmetic_decrement () =
  let r = Exact.uniform ~c:1.0 ~lifespan:100.0 in
  let ps = Schedule.periods r.Exact.schedule in
  for i = 0 to Array.length ps - 2 do
    feq ~eps:1e-9 1.0 (ps.(i) -. ps.(i + 1))
  done

let test_uniform_m_matches_formula () =
  let c = 1.0 and l = 100.0 in
  let r = Exact.uniform ~c ~lifespan:l in
  Alcotest.(check int) "period count"
    (Closed_forms.uniform_optimal_m ~c ~lifespan:l)
    (Schedule.num_periods r.Exact.schedule)

let test_uniform_t0_near_sqrt_2cl () =
  (* (4.5): t0 = sqrt(2cL) + low-order terms. *)
  let c = 1.0 and l = 100.0 in
  let r = Exact.uniform ~c ~lifespan:l in
  Alcotest.(check bool) "within 10% of sqrt(2cL)" true
    (Float.abs (r.Exact.t0 -. sqrt (2.0 *. c *. l)) /. sqrt (2.0 *. c *. l)
    < 0.10)

let test_uniform_beats_neighbouring_m () =
  (* The selected m must beat arithmetic schedules with m±1 periods. *)
  let c = 1.0 and l = 100.0 in
  let lf = Families.uniform ~lifespan:l in
  let r = Exact.uniform ~c ~lifespan:l in
  let m = Schedule.num_periods r.Exact.schedule in
  let arithmetic m =
    let mf = float_of_int m in
    let t0 = (l /. mf) +. ((mf -. 1.0) *. c /. 2.0) in
    if t0 -. ((mf -. 1.0) *. c) <= 0.0 then None
    else
      Some
        (Schedule.of_periods (Array.init m (fun i -> t0 -. (float_of_int i *. c))))
  in
  List.iter
    (fun m' ->
      match arithmetic m' with
      | None -> ()
      | Some s ->
          Alcotest.(check bool)
            (Printf.sprintf "beats m=%d" m')
            true
            (r.Exact.expected_work >= Schedule.expected_work ~c lf s -. 1e-9))
    [ m - 1; m + 1 ]

let test_uniform_validation () =
  match Exact.uniform ~c:10.0 ~lifespan:5.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c >= L accepted"

(* --- geometric decreasing ---------------------------------------------- *)

let test_geo_dec_equal_periods () =
  let r = Exact.geometric_decreasing ~c:1.0 ~a:(exp 0.05) in
  let ps = Schedule.periods r.Exact.schedule in
  Array.iter (fun t -> feq ~eps:1e-12 r.Exact.t0 t) ps

let test_geo_dec_expected_work_closed_form () =
  (* E = (t*-c) q/(1-q) must equal the numerically summed E of the
     truncated schedule. *)
  let c = 1.0 and a = exp 0.05 in
  let lf = Families.geometric_decreasing ~a in
  let r = Exact.geometric_decreasing ~c ~a in
  feq ~eps:1e-9 r.Exact.expected_work
    (Schedule.expected_work ~c lf r.Exact.schedule)

let test_geo_dec_beats_perturbed_equal_periods () =
  (* t* maximizes E among equal-period schedules. *)
  let c = 1.0 and a = exp 0.05 in
  let lf = Families.geometric_decreasing ~a in
  let r = Exact.geometric_decreasing ~c ~a in
  let equal_e t =
    let n = 2000 in
    Schedule.expected_work ~c lf (Schedule.of_periods (Array.make n t))
  in
  List.iter
    (fun dt ->
      Alcotest.(check bool)
        (Printf.sprintf "beats t*+%g" dt)
        true
        (r.Exact.expected_work >= equal_e (r.Exact.t0 +. dt) -. 1e-9))
    [ -2.0; -0.5; 0.5; 2.0 ]

let test_geo_dec_validation () =
  (match Exact.geometric_decreasing ~c:1.0 ~a:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a = 1 accepted");
  (* c so large that t* <= c: no productive schedule. *)
  match Exact.geometric_decreasing ~c:100.0 ~a:(exp 5.0) with
  | exception Invalid_argument _ -> ()
  | r ->
      (* If it did not raise, t* must genuinely exceed c. *)
      Alcotest.(check bool) "t* > c" true (r.Exact.t0 > 100.0)

(* --- geometric increasing ---------------------------------------------- *)

let test_geo_inc_periods_follow_recurrence () =
  let c = 1.0 and l = 30.0 in
  let r = Exact.geometric_increasing ~c ~lifespan:l in
  let ps = Schedule.periods r.Exact.schedule in
  for i = 0 to Array.length ps - 2 do
    match Closed_forms.geo_inc_next_period_optimal ~t_prev:ps.(i) ~c with
    | Some expected -> feq ~eps:1e-6 expected ps.(i + 1)
    | None -> Alcotest.fail "recurrence must continue"
  done

let test_geo_inc_fits_in_lifespan () =
  let r = Exact.geometric_increasing ~c:1.0 ~lifespan:30.0 in
  Alcotest.(check bool) "within L" true
    (Schedule.total_duration r.Exact.schedule <= 30.0 +. 1e-9)

let test_geo_inc_positive_work () =
  let r = Exact.geometric_increasing ~c:1.0 ~lifespan:30.0 in
  Alcotest.(check bool) "positive expected work" true
    (r.Exact.expected_work > 0.0)

let test_geo_inc_validation () =
  match Exact.geometric_increasing ~c:31.0 ~lifespan:30.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c >= L accepted"

(* --- cross-validation: exact vs independent optimizer ------------------- *)

let test_exact_uniform_matches_optimizer () =
  let c = 1.0 and l = 60.0 in
  let lf = Families.uniform ~lifespan:l in
  let exact = Exact.uniform ~c ~lifespan:l in
  let o = Optimizer.optimal_schedule lf ~c in
  Alcotest.(check bool) "within 0.5%" true
    (Float.abs (exact.Exact.expected_work -. o.Optimizer.expected_work)
    <= 0.005 *. exact.Exact.expected_work);
  (* The optimizer can only ever *approach* the exact value from below. *)
  Alcotest.(check bool) "optimizer <= exact + eps" true
    (o.Optimizer.expected_work <= exact.Exact.expected_work +. 1e-6)

let test_exact_geo_dec_matches_optimizer () =
  let c = 1.0 and a = exp 0.05 in
  let lf = Families.geometric_decreasing ~a in
  let exact = Exact.geometric_decreasing ~c ~a in
  let o = Optimizer.optimal_schedule lf ~c in
  Alcotest.(check bool) "within 0.5%" true
    (Float.abs (exact.Exact.expected_work -. o.Optimizer.expected_work)
    <= 0.005 *. exact.Exact.expected_work)

let prop_uniform_exact_beats_random_schedules =
  QCheck.Test.make
    ~name:"uniform exact schedule beats random same-horizon schedules"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.05 1.0))
    (fun weights ->
      let c = 1.0 and l = 100.0 in
      let lf = Families.uniform ~lifespan:l in
      let exact = Exact.uniform ~c ~lifespan:l in
      (* Normalize random weights into a schedule spanning exactly L. *)
      let total = List.fold_left ( +. ) 0.0 weights in
      let ps = Array.of_list (List.map (fun w -> w /. total *. l) weights) in
      let s = Schedule.of_periods ps in
      exact.Exact.expected_work >= Schedule.expected_work ~c lf s -. 1e-9)

let () =
  Alcotest.run "exact"
    [
      ( "uniform",
        [
          Alcotest.test_case "periods sum to L" `Quick
            test_uniform_periods_sum_to_lifespan;
          Alcotest.test_case "arithmetic decrement" `Quick
            test_uniform_arithmetic_decrement;
          Alcotest.test_case "m matches formula" `Quick
            test_uniform_m_matches_formula;
          Alcotest.test_case "t0 near sqrt(2cL)" `Quick
            test_uniform_t0_near_sqrt_2cl;
          Alcotest.test_case "beats neighbouring m" `Quick
            test_uniform_beats_neighbouring_m;
          Alcotest.test_case "validation" `Quick test_uniform_validation;
          QCheck_alcotest.to_alcotest prop_uniform_exact_beats_random_schedules;
        ] );
      ( "geometric-decreasing",
        [
          Alcotest.test_case "equal periods" `Quick test_geo_dec_equal_periods;
          Alcotest.test_case "E closed form" `Quick
            test_geo_dec_expected_work_closed_form;
          Alcotest.test_case "beats perturbed equal" `Quick
            test_geo_dec_beats_perturbed_equal_periods;
          Alcotest.test_case "validation" `Quick test_geo_dec_validation;
        ] );
      ( "geometric-increasing",
        [
          Alcotest.test_case "follows [3] recurrence" `Quick
            test_geo_inc_periods_follow_recurrence;
          Alcotest.test_case "fits in lifespan" `Quick
            test_geo_inc_fits_in_lifespan;
          Alcotest.test_case "positive work" `Quick test_geo_inc_positive_work;
          Alcotest.test_case "validation" `Quick test_geo_inc_validation;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "uniform vs optimizer" `Quick
            test_exact_uniform_matches_optimizer;
          Alcotest.test_case "geo-dec vs optimizer" `Quick
            test_exact_geo_dec_matches_optimizer;
        ] );
    ]
