let feq eps a b = Alcotest.(check (float eps)) "value" a b

let test_mean () = feq 1e-12 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_mean_empty () =
  match Stats.mean [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_summarize () =
  let s = Stats.summarize [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  feq 1e-12 5.0 s.Stats.mean;
  (* sample variance with n-1: sum of squared deviations = 32, / 7 *)
  feq 1e-12 (32.0 /. 7.0) s.Stats.variance;
  feq 1e-12 2.0 s.Stats.min;
  feq 1e-12 9.0 s.Stats.max;
  Alcotest.(check int) "n" 8 s.Stats.n

let test_summarize_single () =
  let s = Stats.summarize [| 42.0 |] in
  feq 0.0 42.0 s.Stats.mean;
  feq 0.0 0.0 s.Stats.variance

let test_standard_error () =
  (* For [0;2], stddev = sqrt(2), se = 1. *)
  feq 1e-12 1.0 (Stats.standard_error [| 0.0; 2.0 |])

let test_ci_contains_mean () =
  let xs = Array.init 1000 (fun i -> float_of_int (i mod 10)) in
  let lo, hi = Stats.confidence_interval_95 xs in
  let mu = Stats.mean xs in
  Alcotest.(check bool) "mean inside CI" true (lo < mu && mu < hi);
  Alcotest.(check bool) "CI narrow for large n" true (hi -. lo < 0.5)

let test_quantiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq 1e-12 1.0 (Stats.quantile xs ~q:0.0);
  feq 1e-12 3.0 (Stats.quantile xs ~q:0.5);
  feq 1e-12 5.0 (Stats.quantile xs ~q:1.0);
  feq 1e-12 2.0 (Stats.quantile xs ~q:0.25)

let test_quantile_interpolates () =
  feq 1e-12 1.5 (Stats.quantile [| 1.0; 2.0 |] ~q:0.5)

let test_quantile_validation () =
  match Stats.quantile [| 1.0 |] ~q:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_histogram () =
  let h = Stats.histogram [| 0.1; 0.2; 0.6; 0.9 |] ~bins:2 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check (array int)) "bins" [| 2; 2 |] h

let test_histogram_clamps () =
  let h = Stats.histogram [| -5.0; 5.0 |] ~bins:2 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check (array int)) "clamped" [| 1; 1 |] h

let test_ecdf_survival () =
  let s = Stats.ecdf_survival [| 1.0; 2.0; 2.0; 3.0 |] in
  Alcotest.(check int) "distinct points" 3 (Array.length s);
  let t0, p0 = s.(0) in
  feq 1e-12 1.0 t0;
  feq 1e-12 0.75 p0;
  let t1, p1 = s.(1) in
  feq 1e-12 2.0 t1;
  feq 1e-12 0.25 p1;
  let t2, p2 = s.(2) in
  feq 1e-12 3.0 t2;
  feq 1e-12 0.0 p2

let test_kaplan_meier_no_censoring_matches_ecdf () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let km = Stats.kaplan_meier (Array.map (fun x -> (x, true)) xs) in
  let ecdf = Stats.ecdf_survival xs in
  Alcotest.(check int) "same length" (Array.length ecdf) (Array.length km);
  Array.iteri
    (fun i (t, s) ->
      let t', s' = ecdf.(i) in
      feq 1e-12 t' t;
      feq 1e-12 s' s)
    km

let test_kaplan_meier_with_censoring () =
  (* Events at 1 and 3; censored at 2. At t=1: S = 3/4... wait n=4:
     obs: (1,true) (2,false) (3,true) (4,true).
     t=1: at risk 4, 1 event -> S = 0.75
     t=2: censored, no step
     t=3: at risk 2, 1 event -> S = 0.375
     t=4: at risk 1, 1 event -> S = 0. *)
  let km =
    Stats.kaplan_meier [| (1.0, true); (2.0, false); (3.0, true); (4.0, true) |]
  in
  Alcotest.(check int) "steps" 3 (Array.length km);
  feq 1e-12 0.75 (snd km.(0));
  feq 1e-12 0.375 (snd km.(1));
  feq 1e-12 0.0 (snd km.(2))

let test_linear_regression () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 1.0; 3.0; 5.0; 7.0 |] in
  let slope, intercept = Stats.linear_regression ~xs ~ys in
  feq 1e-12 2.0 slope;
  feq 1e-12 1.0 intercept

let test_linear_regression_zero_variance () =
  match Stats.linear_regression ~xs:[| 1.0; 1.0 |] ~ys:[| 0.0; 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_rmse_and_linf () =
  let predicted = [| 1.0; 2.0; 3.0 |] and actual = [| 1.0; 2.0; 7.0 |] in
  feq 1e-12 (4.0 /. sqrt 3.0) (Stats.rmse ~predicted ~actual);
  feq 1e-12 4.0 (Stats.max_abs_error ~predicted ~actual)

let prop_variance_nonnegative =
  QCheck.Test.make ~name:"variance is nonnegative" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-100.0) 100.0))
    (fun a -> (Stats.summarize a).Stats.variance >= 0.0)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(array_of_size Gen.(int_range 2 40) (float_range (-10.0) 10.0))
    (fun a ->
      Stats.quantile a ~q:0.25 <= Stats.quantile a ~q:0.75)

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "summarize single" `Quick test_summarize_single;
          Alcotest.test_case "standard error" `Quick test_standard_error;
          Alcotest.test_case "CI contains mean" `Quick test_ci_contains_mean;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "quantile interpolates" `Quick
            test_quantile_interpolates;
          Alcotest.test_case "quantile validation" `Quick
            test_quantile_validation;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps;
          Alcotest.test_case "ecdf survival" `Quick test_ecdf_survival;
          Alcotest.test_case "KM = ECDF without censoring" `Quick
            test_kaplan_meier_no_censoring_matches_ecdf;
          Alcotest.test_case "KM with censoring" `Quick
            test_kaplan_meier_with_censoring;
          Alcotest.test_case "linear regression" `Quick test_linear_regression;
          Alcotest.test_case "regression zero variance" `Quick
            test_linear_regression_zero_variance;
          Alcotest.test_case "rmse and Linf" `Quick test_rmse_and_linf;
          QCheck_alcotest.to_alcotest prop_variance_nonnegative;
          QCheck_alcotest.to_alcotest prop_quantile_monotone;
        ] );
    ]
