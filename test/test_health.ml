(* Health rules: the .cshealth grammar, resolution over snapshots,
   verdict/exit-code semantics — plus the Prometheus label-escaping
   round-trip and the gc.*/pool.* exposition passing the grammar
   validator, since those series are exactly what the rules watch. *)

let snap_of m = Obs_metrics.snapshot m

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let registry () =
  let m = Obs_metrics.create () in
  Obs_metrics.add (Obs_metrics.counter m "gc.samples") 5;
  Obs_metrics.set (Obs_metrics.gauge m "pool.chunk_order_violations") 0.0;
  Obs_metrics.set (Obs_metrics.gauge m "pool.busy_seconds") 1.25;
  let h = Obs_metrics.histogram m "episode.elapsed" in
  List.iter (Obs_metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  m

(* ---- parsing ---- *)

let parse_ok line =
  match Obs_health.parse_rule line with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S: %s" line e

let test_parse_rule () =
  let r = parse_ok "critical pool.chunk_order_violations == 0" in
  Alcotest.(check bool) "critical" true (r.Obs_health.severity = Obs_health.Critical);
  Alcotest.(check string) "selector" "pool.chunk_order_violations"
    r.Obs_health.selector;
  Alcotest.(check bool) "not optional" false r.Obs_health.optional;
  Alcotest.(check (float 0.0)) "threshold" 0.0 r.Obs_health.threshold;
  let r = parse_ok "warn gc.promoted_words? <= 5e8" in
  Alcotest.(check bool) "warn" true (r.Obs_health.severity = Obs_health.Warn);
  Alcotest.(check bool) "optional" true r.Obs_health.optional;
  Alcotest.(check string) "? stripped" "gc.promoted_words"
    r.Obs_health.selector;
  Alcotest.(check (float 0.0)) "sci threshold" 5e8 r.Obs_health.threshold

let test_parse_rejects () =
  List.iter
    (fun line ->
      match Obs_health.parse_rule line with
      | Ok _ -> Alcotest.failf "accepted %S" line
      | Error _ -> ())
    [
      "";
      "info x < 1";
      "warn x ~ 1";
      "warn x <";
      "warn x < one";
      "warn x < 1 extra";
    ]

let test_parse_document () =
  let doc =
    "# comment\n\nwarn a.b <= 1\n   # indented comment\ncritical c.d? != 0\n"
  in
  (match Obs_health.parse doc with
  | Error e -> Alcotest.failf "doc: %s" e
  | Ok rules -> Alcotest.(check int) "two rules" 2 (List.length rules));
  match Obs_health.parse "warn a < 1\nbogus line\n" with
  | Ok _ -> Alcotest.fail "accepted bogus line"
  | Error e ->
      Alcotest.(check bool) "error names line 2" true
        (contains ~affix:"line 2" e)

(* ---- resolution ---- *)

let test_resolve () =
  let snap = snap_of (registry ()) in
  let get sel = Obs_health.resolve snap sel in
  Alcotest.(check (option (float 0.0))) "counter" (Some 5.0) (get "gc.samples");
  Alcotest.(check (option (float 0.0)))
    "counter.count" (Some 5.0) (get "gc.samples.count");
  Alcotest.(check (option (float 0.0)))
    "gauge" (Some 1.25) (get "pool.busy_seconds");
  Alcotest.(check (option (float 0.0)))
    "hist bare = mean" (Some 2.5) (get "episode.elapsed");
  Alcotest.(check (option (float 0.0)))
    "hist.count" (Some 4.0) (get "episode.elapsed.count");
  Alcotest.(check (option (float 0.0)))
    "hist.sum" (Some 10.0) (get "episode.elapsed.sum");
  Alcotest.(check (option (float 0.0)))
    "hist.min" (Some 1.0) (get "episode.elapsed.min");
  Alcotest.(check (option (float 0.0)))
    "hist.max" (Some 4.0) (get "episode.elapsed.max");
  Alcotest.(check (option (float 0.0))) "absent" None (get "no.such");
  (* A gauge that was created but never set is nan: must not resolve. *)
  let m = Obs_metrics.create () in
  ignore (Obs_metrics.gauge m "unset");
  Alcotest.(check (option (float 0.0)))
    "nan gauge unresolved" None
    (Obs_health.resolve (snap_of m) "unset")

(* ---- evaluation ---- *)

let rules_of text =
  match Obs_health.parse text with
  | Ok r -> r
  | Error e -> Alcotest.failf "rules: %s" e

let test_evaluate_verdicts () =
  let entries = [ (None, snap_of (registry ())) ] in
  let run text = Obs_health.evaluate ~rules:(rules_of text) entries in
  let code text = Obs_health.exit_code (run text) in
  Alcotest.(check int) "all pass" 0
    (code "critical pool.chunk_order_violations == 0\nwarn gc.samples >= 1\n");
  Alcotest.(check int) "warn fail" 1 (code "warn gc.samples >= 100\n");
  Alcotest.(check int) "critical fail" 2 (code "critical gc.samples >= 100\n");
  Alcotest.(check int) "critical dominates warn" 2
    (code "warn gc.samples >= 1\ncritical episode.elapsed.max < 1\n");
  Alcotest.(check int) "missing non-optional is warn-level" 1
    (code "critical absent.metric == 0\n");
  Alcotest.(check int) "missing optional is skipped" 0
    (code "critical absent.metric? == 0\n");
  let r = run "warn gc.samples >= 100\n" in
  (match r.Obs_health.outcomes with
  | [ (_, Obs_health.Fail { value; at }) ] ->
      Alcotest.(check (float 0.0)) "offending value" 5.0 value;
      Alcotest.(check bool) "no index on single snapshot" true (at = None)
  | _ -> Alcotest.fail "expected one Fail outcome");
  Alcotest.(check string) "verdict string" "warn"
    (Obs_health.verdict_to_string r.Obs_health.verdict)

let test_evaluate_over_ring () =
  (* The rule must hold in every snapshot where it resolves; the first
     violating frame is reported with its trial index. *)
  let frame v =
    let m = Obs_metrics.create () in
    Obs_metrics.set (Obs_metrics.gauge m "g") v;
    snap_of m
  in
  let entries =
    [ (Some 512, frame 1.0); (Some 1024, frame 9.0); (Some 1536, frame 2.0) ]
  in
  let r = Obs_health.evaluate ~rules:(rules_of "warn g <= 5\n") entries in
  (match r.Obs_health.outcomes with
  | [ (_, Obs_health.Fail { value; at }) ] ->
      Alcotest.(check (float 0.0)) "violating frame" 9.0 value;
      Alcotest.(check (option int)) "its index" (Some 1024) at
  | _ -> Alcotest.fail "expected Fail");
  Alcotest.(check int) "entries counted" 3 r.Obs_health.entries;
  let ok = Obs_health.evaluate ~rules:(rules_of "warn g <= 10\n") entries in
  Alcotest.(check int) "holds everywhere" 0 (Obs_health.exit_code ok)

let test_report_json () =
  let entries = [ (None, snap_of (registry ())) ] in
  let r =
    Obs_health.evaluate
      ~rules:(rules_of "warn gc.samples >= 100\ncritical absent? == 0\n")
      entries
  in
  let j = Obs_health.report_to_json r in
  match j with
  | Jsonx.Obj fields ->
      Alcotest.(check bool) "verdict warn" true
        (List.assoc "verdict" fields = Jsonx.String "warn");
      (match List.assoc "rules" fields with
      | Jsonx.List [ Jsonx.Obj f1; Jsonx.Obj f2 ] ->
          Alcotest.(check bool) "rule 1 failed" true
            (List.assoc "status" f1 = Jsonx.String "fail");
          Alcotest.(check bool) "rule 2 skipped" true
            (List.assoc "status" f2 = Jsonx.String "skipped")
      | _ -> Alcotest.fail "rules array shape")
  | _ -> Alcotest.fail "object expected"

(* ---- Prometheus label escaping and exposition round-trips ---- *)

let test_label_escaping () =
  let cases =
    [
      ("plain", "plain");
      ("with \"quotes\"", "with \\\"quotes\\\"");
      ("back\\slash", "back\\\\slash");
      ("line\nbreak", "line\\nbreak");
      ("caf\xc3\xa9", "caf\xc3\xa9");
      ("", "");
    ]
  in
  List.iter
    (fun (raw, expected) ->
      Alcotest.(check string) raw expected (Obs_export.escape_label_value raw))
    cases

let test_labeled_exposition_validates () =
  let lines =
    Obs_export.prometheus_labeled ~name:"pool_domain_busy_seconds"
      ~help:"Per-domain busy time." ~typ:"gauge"
      [
        ([ ("domain", "0") ], 1.5);
        ([ ("domain", "1"); ("host", "a\"b\\c\nd") ], 0.25);
      ]
  in
  (match Obs_export.validate_prometheus lines with
  | Ok n -> Alcotest.(check int) "two samples" 2 n
  | Error e -> Alcotest.failf "labeled exposition rejected: %s" e);
  (* The escaped value survives verbatim on its line. *)
  Alcotest.(check bool) "escapes rendered" true
    (List.exists (fun l -> contains ~affix:"host=\"a\\\"b\\\\c\\nd\"" l) lines)

let test_gc_pool_exposition_validates () =
  (* The registry a --resource --jobs N run produces: gc.* and pool.*
     series through the standard renderer, plus labeled per-domain
     series appended — the composite must still parse. *)
  let m = registry () in
  Obs_metrics.set (Obs_metrics.gauge m "gc.heap_words") 226962.0;
  Obs_metrics.set (Obs_metrics.gauge m "gc.minor_words") 607865.0;
  let lines =
    Obs_export.prometheus m
    @ Obs_export.prometheus_labeled ~name:"pool_domain_chunks"
        ~help:"Chunks executed per domain." ~typ:"gauge"
        [ ([ ("domain", "0") ], 3.0); ([ ("domain", "1") ], 1.0) ]
  in
  match Obs_export.validate_prometheus lines with
  | Ok n -> Alcotest.(check bool) "samples present" true (n > 5)
  | Error e -> Alcotest.failf "composite exposition rejected: %s" e

let () =
  Alcotest.run "health"
    [
      ( "grammar",
        [
          Alcotest.test_case "rule line" `Quick test_parse_rule;
          Alcotest.test_case "rejects" `Quick test_parse_rejects;
          Alcotest.test_case "document" `Quick test_parse_document;
        ] );
      ("resolve", [ Alcotest.test_case "selectors" `Quick test_resolve ]);
      ( "evaluate",
        [
          Alcotest.test_case "verdicts and exit codes" `Quick
            test_evaluate_verdicts;
          Alcotest.test_case "snapshot ring" `Quick test_evaluate_over_ring;
          Alcotest.test_case "json report" `Quick test_report_json;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "label escaping" `Quick test_label_escaping;
          Alcotest.test_case "labeled series validate" `Quick
            test_labeled_exposition_validates;
          Alcotest.test_case "gc/pool composite validates" `Quick
            test_gc_pool_exposition_validates;
        ] );
    ]
