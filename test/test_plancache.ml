(* The plan-cache contracts of DESIGN §15: canonical quantized keys,
   hit-vs-miss bit-identity, LRU eviction order, closed-form and table
   tiers matching a direct Guideline.plan within the certified bound,
   and plan_batch dedup. *)

let scen family c = { Plan_key.family; c }
let uniform l = Plan_key.Uniform { lifespan = l }
let geo_dec a = Plan_key.Geo_dec { a }

(* Scenarios covering every family constructor, used by the
   cached-matches-direct property sweep. *)
let all_family_scenarios =
  [
    scen (uniform 100.0) 1.0;
    scen (Plan_key.Polynomial { d = 3; lifespan = 80.0 }) 1.0;
    scen (geo_dec (exp 0.05)) 1.0;
    scen (Plan_key.Geo_inc { lifespan = 30.0 }) 1.0;
    scen (Plan_key.Weibull { w_shape = 0.8; w_scale = 60.0 }) 1.0;
    scen (Plan_key.Power_law { d = 2.0 }) 0.5;
  ]

(* --- key canonicalization --------------------------------------------- *)

let test_key_quantization_collapses () =
  (* L values closer than the 9-significant-digit grid share one key... *)
  Alcotest.(check string)
    "quantized L collapse"
    (Plan_key.key (scen (uniform 100.0) 1.0))
    (Plan_key.key (scen (uniform 100.0000001) 1.0));
  Alcotest.(check string)
    "quantized c collapse"
    (Plan_key.key (scen (uniform 100.0) 1.0))
    (Plan_key.key (scen (uniform 100.0) 1.0000000001));
  (* ...while genuinely different parameters do not. *)
  Alcotest.(check bool)
    "distinct L distinct keys" false
    (String.equal
       (Plan_key.key (scen (uniform 100.0) 1.0))
       (Plan_key.key (scen (uniform 101.0) 1.0)))

let test_key_canonical_aliases () =
  (* exponential ~rate IS geo-dec with a = exp rate; polynomial d=1 IS
     uniform: aliases must share a cache line. *)
  Alcotest.(check string)
    "exponential folds onto geo-dec"
    (Plan_key.key (scen (geo_dec (exp 0.05)) 1.0))
    (Plan_key.key (scen (Plan_key.exponential ~rate:0.05) 1.0));
  Alcotest.(check string)
    "polynomial d=1 folds onto uniform"
    (Plan_key.key (scen (uniform 100.0) 1.0))
    (Plan_key.key (scen (Plan_key.Polynomial { d = 1; lifespan = 100.0 }) 1.0))

let test_key_excludes_nothing_it_shouldnt () =
  (* Weibull's two parameters must both be in the key. *)
  Alcotest.(check bool)
    "weibull params distinguish" false
    (String.equal
       (Plan_key.key (scen (Plan_key.Weibull { w_shape = 0.8; w_scale = 60.0 }) 1.0))
       (Plan_key.key (scen (Plan_key.Weibull { w_shape = 0.9; w_scale = 60.0 }) 1.0)))

(* --- LRU behavior ------------------------------------------------------ *)

let test_hit_returns_what_miss_computed () =
  let pc = Plancache.create () in
  List.iter
    (fun s ->
      let miss = Plancache.plan pc s in
      let hit = Plancache.plan pc s in
      (* Bit-identity, the strong form: the hit IS the miss's result. *)
      Alcotest.(check bool) "physically identical" true (miss == hit))
    all_family_scenarios;
  let st = Plancache.stats pc in
  Alcotest.(check int) "misses" (List.length all_family_scenarios) st.Plancache.misses;
  Alcotest.(check int) "hits" (List.length all_family_scenarios) st.Plancache.hits

let test_quantized_aliases_share_entry () =
  let pc = Plancache.create () in
  let a = Plancache.plan pc (scen (uniform 100.0) 1.0) in
  let b = Plancache.plan pc (scen (uniform 100.0000001) 1.0) in
  Alcotest.(check bool) "no double store" true (a == b);
  Alcotest.(check int) "one miss" 1 (Plancache.stats pc).Plancache.misses

let test_lru_eviction_order () =
  let pc = Plancache.create ~capacity:2 () in
  let s1 = scen (uniform 100.0) 1.0
  and s2 = scen (uniform 110.0) 1.0
  and s3 = scen (uniform 120.0) 1.0 in
  let r1 = Plancache.plan pc s1 in
  let _ = Plancache.plan pc s2 in
  (* Touch s1 so s2 becomes least-recently-used; s3 must evict s2. *)
  let r1' = Plancache.plan pc s1 in
  Alcotest.(check bool) "s1 still resident" true (r1 == r1');
  let _ = Plancache.plan pc s3 in
  Alcotest.(check int) "one eviction" 1 (Plancache.stats pc).Plancache.evictions;
  Alcotest.(check int) "size capped" 2 (Plancache.stats pc).Plancache.size;
  let r1'' = Plancache.plan pc s1 in
  Alcotest.(check bool) "s1 survived the eviction" true (r1 == r1'');
  (* s2 was evicted: planning it again is a miss (fresh result). *)
  let misses_before = (Plancache.stats pc).Plancache.misses in
  let _ = Plancache.plan pc s2 in
  Alcotest.(check int) "s2 re-missed" (misses_before + 1)
    (Plancache.stats pc).Plancache.misses

(* --- cached answers match direct answers ------------------------------- *)

(* The closed-form tier replaces the grid search with the exact optimum,
   so cached expected work may only differ from the direct search by the
   search's own refinement error; the table tier is certified by its
   stored bound. *)
let check_close name ~bound direct cached =
  let d = direct.Guideline.expected_work
  and g = cached.Guideline.expected_work in
  let rel = abs_float (g -. d) /. Float.max 1.0 (abs_float d) in
  Alcotest.(check bool)
    (Printf.sprintf "%s relative gap %.3e within %.3e" name rel bound)
    true (rel <= bound)

let test_cached_matches_direct_all_families () =
  let pc = Plancache.create () in
  List.iter
    (fun s ->
      let direct =
        Guideline.plan (Plan_key.life_function s.Plan_key.family)
          ~c:s.Plan_key.c
      in
      let cached = Plancache.plan pc s in
      check_close
        (Format.asprintf "%a" Plan_key.pp_scenario s)
        ~bound:1e-6 direct cached)
    all_family_scenarios

let test_closed_form_tier_is_exact () =
  (* Tier 2 must agree with the analytic optimum, not just the search. *)
  let a = exp 0.05 and c = 1.0 in
  let pc = Plancache.create () in
  let cached = Plancache.plan pc (scen (geo_dec a) c) in
  let t_star = Closed_forms.geo_dec_t_optimal ~a ~c in
  Alcotest.(check (float 1e-12)) "t0 is the Lambert-W t*" t_star
    cached.Guideline.t0;
  (* And it may never fall below the searched optimum. *)
  let direct = Guideline.plan (Families.geometric_decreasing ~a) ~c in
  Alcotest.(check bool) "closed form >= searched" true
    (cached.Guideline.expected_work
    >= direct.Guideline.expected_work -. 1e-9)

let bake_uniform_table () =
  match
    Plan_table.bake ~kind:"uniform" ~c_lo:0.5 ~c_hi:2.0 ~c_steps:4
      ~param_lo:60.0 ~param_hi:140.0 ~param_steps:4 ()
  with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_table_within_certified_bound () =
  let tbl = bake_uniform_table () in
  let bound = Plan_table.error_bound tbl in
  Alcotest.(check bool) "bound is sane" true (bound > 0.0 && bound < 0.05);
  (* Probe a deterministic sweep of off-node points; every interpolated
     plan must be within the certified relative shortfall of direct. *)
  for i = 0 to 9 do
    let frac = float_of_int i /. 9.0 in
    let l = 60.0 +. (80.0 *. frac) in
    let c = 0.5 +. (1.5 *. (1.0 -. frac)) in
    let s = scen (uniform l) c in
    match Plan_table.plan tbl s with
    | None -> Alcotest.fail "table should cover the probe"
    | Some interp ->
        let direct = Guideline.plan (Families.uniform ~lifespan:l) ~c in
        let d = direct.Guideline.expected_work in
        let shortfall = (d -. interp.Guideline.expected_work) /. d in
        Alcotest.(check bool)
          (Printf.sprintf "shortfall %.3e <= certified %.3e at L=%g c=%g"
             shortfall bound l c)
          true
          (shortfall <= bound)
  done

let test_table_roundtrip_and_cache_tier () =
  let tbl = bake_uniform_table () in
  let file = Filename.temp_file "cs_plan_table" ".cstable" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      (match Plan_table.save file tbl with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let tbl' =
        match Plan_table.load file with
        | Ok t -> t
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check (float 0.0))
        "error bound round-trips bit-exactly"
        (Plan_table.error_bound tbl)
        (Plan_table.error_bound tbl');
      let s = scen (uniform 77.0) 1.3 in
      let direct_t0 =
        match Plan_table.t0_of tbl s with
        | Some t0 -> t0
        | None -> Alcotest.fail "covered"
      in
      (match Plan_table.t0_of tbl' s with
      | Some t0 -> Alcotest.(check (float 0.0)) "t0 round-trips" direct_t0 t0
      | None -> Alcotest.fail "loaded table must cover the same range");
      (* Wired as tier 3: an uncached covered scenario answers from the
         table (no interval search), then becomes an LRU hit. *)
      let pc = Plancache.create ~closed_forms:false () in
      Plancache.add_table pc tbl';
      let first = Plancache.plan pc s in
      Alcotest.(check (float 0.0)) "tier-3 t0 is the interpolant" direct_t0
        first.Guideline.t0;
      let again = Plancache.plan pc s in
      Alcotest.(check bool) "then a bit-identical hit" true (first == again))

let test_table_does_not_cover_foreign_family () =
  let tbl = bake_uniform_table () in
  Alcotest.(check bool) "geo-dec not covered" false
    (Plan_table.covers tbl (scen (geo_dec (exp 0.05)) 1.0));
  Alcotest.(check bool) "out-of-range c not covered" false
    (Plan_table.covers tbl (scen (uniform 100.0) 10.0));
  (* polynomial d=1 canonicalizes to uniform and IS covered. *)
  Alcotest.(check bool) "poly d=1 covered via canonicalization" true
    (Plan_table.covers tbl
       (scen (Plan_key.Polynomial { d = 1; lifespan = 100.0 }) 1.0))

(* --- plan_batch dedup -------------------------------------------------- *)

let test_guideline_batch_dedups () =
  let lf = Families.uniform ~lifespan:100.0 in
  let lf2 = Families.geometric_increasing ~lifespan:30.0 in
  let batch = [ (lf, 1.0); (lf2, 1.0); (lf, 1.0); (lf, 2.0); (lf2, 1.0) ] in
  let rs = Array.of_list (Guideline.plan_batch batch) in
  Alcotest.(check int) "result per input" 5 (Array.length rs);
  (* Duplicates fan out the same computation: physically shared. *)
  Alcotest.(check bool) "dup scenario shares result" true (rs.(0) == rs.(2));
  Alcotest.(check bool) "dup scenario shares result (2)" true
    (rs.(1) == rs.(4));
  Alcotest.(check bool) "different c not shared" true (rs.(0) != rs.(3));
  (* And order matches the undeduped map. *)
  List.iteri
    (fun i (lf, c) ->
      let direct = Guideline.plan lf ~c in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "slot %d matches direct" i)
        direct.Guideline.expected_work
        rs.(i).Guideline.expected_work)
    batch

let test_cache_batch_dedups_via_hits () =
  let pc = Plancache.create ~closed_forms:false () in
  let s = scen (uniform 100.0) 1.0 in
  let rs = Plancache.plan_batch pc [ s; s; s ] in
  (match rs with
  | [ a; b; c ] ->
      Alcotest.(check bool) "batch dedup" true (a == b && b == c)
  | _ -> Alcotest.fail "arity");
  let st = Plancache.stats pc in
  Alcotest.(check int) "one miss" 1 st.Plancache.misses;
  Alcotest.(check int) "two hits" 2 st.Plancache.hits

(* --- observability ----------------------------------------------------- *)

let test_cache_counters_registered () =
  let m = Obs_metrics.create () in
  let obs = Obs.create ~metrics:m () in
  let pc = Plancache.create ~obs () in
  let s = scen (uniform 100.0) 1.0 in
  let _ = Plancache.plan pc s in
  let _ = Plancache.plan pc s in
  let count name = Obs_metrics.count (Obs_metrics.counter m name) in
  Alcotest.(check int) "cache.misses counter" 1 (count "cache.misses");
  Alcotest.(check int) "cache.hits counter" 1 (count "cache.hits")

(* --- property sweep ---------------------------------------------------- *)

let prop_cached_matches_direct =
  QCheck.Test.make ~count:40 ~name:"cached uniform plan matches direct"
    QCheck.(pair (float_range 40.0 200.0) (float_range 0.3 3.0))
    (fun (l, c) ->
      let pc = Plancache.create () in
      let cached = Plancache.plan pc (scen (uniform l) c) in
      let direct = Guideline.plan (Families.uniform ~lifespan:l) ~c in
      abs_float (cached.Guideline.expected_work -. direct.Guideline.expected_work)
      <= 1e-6 *. Float.max 1.0 direct.Guideline.expected_work)

let prop_table_within_bound =
  let tbl = lazy (bake_uniform_table ()) in
  QCheck.Test.make ~count:25 ~name:"table plan within certified bound"
    QCheck.(pair (float_range 60.0 140.0) (float_range 0.5 2.0))
    (fun (l, c) ->
      let tbl = Lazy.force tbl in
      match Plan_table.plan tbl (scen (uniform l) c) with
      | None -> false
      | Some interp ->
          let direct = Guideline.plan (Families.uniform ~lifespan:l) ~c in
          let d = direct.Guideline.expected_work in
          (d -. interp.Guideline.expected_work) /. d
          <= Plan_table.error_bound tbl)

let () =
  Alcotest.run "plancache"
    [
      ( "keys",
        [
          Alcotest.test_case "quantization collapses" `Quick
            test_key_quantization_collapses;
          Alcotest.test_case "canonical aliases" `Quick
            test_key_canonical_aliases;
          Alcotest.test_case "distinct params distinct keys" `Quick
            test_key_excludes_nothing_it_shouldnt;
        ] );
      ( "lru",
        [
          Alcotest.test_case "hit is bit-identical to miss" `Quick
            test_hit_returns_what_miss_computed;
          Alcotest.test_case "quantized aliases share an entry" `Quick
            test_quantized_aliases_share_entry;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "cached matches direct, all families" `Quick
            test_cached_matches_direct_all_families;
          Alcotest.test_case "closed-form tier is exact" `Quick
            test_closed_form_tier_is_exact;
          Alcotest.test_case "table within certified bound" `Quick
            test_table_within_certified_bound;
          Alcotest.test_case "table save/load + tier wiring" `Quick
            test_table_roundtrip_and_cache_tier;
          Alcotest.test_case "table coverage rules" `Quick
            test_table_does_not_cover_foreign_family;
        ] );
      ( "batch",
        [
          Alcotest.test_case "Guideline.plan_batch dedups" `Quick
            test_guideline_batch_dedups;
          Alcotest.test_case "cache batch dedups via hits" `Quick
            test_cache_batch_dedups_via_hits;
        ] );
      ( "obs",
        [
          Alcotest.test_case "cache counters registered" `Quick
            test_cache_counters_registered;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cached_matches_direct; prop_table_within_bound ] );
    ]
