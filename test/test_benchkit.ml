(* Benchkit: trimmed OLS fits (including the harness self-test — on
   outlier-laden data the trimmed fit must recover a high r^2, which is
   what keeps reclaim-draw from shipping r^2 ~ 0.34 estimates again),
   the record schema round-trip with v1 compatibility, the noise-aware
   regression gate's verdicts, and history append/load. *)

let synthetic_runs n = Array.init n (fun i -> float_of_int (i + 1))

let test_ols_exact () =
  (* nanos = 37 * runs exactly: slope recovered, r^2 = 1. *)
  let runs = synthetic_runs 64 in
  let nanos = Array.map (fun r -> 37.0 *. r) runs in
  let fit = Bench_fit.ols ~runs ~nanos in
  Alcotest.(check (float 1e-9)) "slope" 37.0 fit.Bench_fit.ns_per_run;
  Alcotest.(check (float 1e-9)) "r^2" 1.0 fit.Bench_fit.r_square;
  Alcotest.(check int) "kept all" 64 fit.Bench_fit.kept

let test_trimmed_recovers_r2 () =
  (* The bench self-test: clean linear data polluted by large upward
     outliers (GC pauses / preemption). Plain OLS craters; the trimmed
     fit must restore both the slope and a trustworthy r^2. *)
  let n = 200 in
  let runs = synthetic_runs n in
  let nanos =
    Array.mapi
      (fun i r ->
        let base = 100.0 *. r in
        (* Deterministic "noise": every 13th sample is a 20x spike. *)
        if i mod 13 = 0 then base *. 20.0 else base +. Float.of_int (i mod 7))
      runs
  in
  let plain = Bench_fit.ols ~runs ~nanos in
  let fit = Bench_fit.trimmed ~runs ~nanos () in
  Alcotest.(check bool)
    "plain OLS is poisoned" true
    (plain.Bench_fit.r_square < 0.9);
  Alcotest.(check bool)
    "trimmed r^2 >= 0.95" true
    (fit.Bench_fit.r_square >= 0.95);
  Alcotest.(check bool)
    "slope within 2%" true
    (Float.abs (fit.Bench_fit.ns_per_run -. 100.0) < 2.0);
  Alcotest.(check bool)
    "trim actually dropped samples" true
    (fit.Bench_fit.kept < fit.Bench_fit.total);
  Alcotest.(check int) "total is n" n fit.Bench_fit.total

let test_trimmed_noop_small () =
  let runs = synthetic_runs 5 in
  let nanos = Array.map (fun r -> 10.0 *. r) runs in
  let fit = Bench_fit.trimmed ~runs ~nanos () in
  Alcotest.(check int) "no trim under 8 samples" 5 fit.Bench_fit.kept

let test_min_samples_guard () =
  (* Below min_samples the slope survives but r^2 declares itself
     undefined — a 2-point residual proves nothing, and a quota-starved
     sampler once shipped r^2 = -5.53 from exactly this regime. *)
  let runs = synthetic_runs 2 in
  let nanos = [| 40.0; 61.0 |] in
  let fit = Bench_fit.ols ~runs ~nanos in
  Alcotest.(check bool)
    "slope still estimated" true
    (Float.is_finite fit.Bench_fit.ns_per_run);
  Alcotest.(check bool)
    "r^2 undefined" true
    (Float.is_nan fit.Bench_fit.r_square);
  Alcotest.(check bool) "fit unreliable" false (Bench_fit.reliable fit);
  (* At min_samples with real variance about the line, r^2 is defined. *)
  let runs4 = synthetic_runs Bench_fit.min_samples in
  let nanos4 = Array.mapi (fun i r -> (10.0 *. r) +. float_of_int (i mod 2)) runs4 in
  let fit4 = Bench_fit.ols ~runs:runs4 ~nanos:nanos4 in
  Alcotest.(check bool)
    "r^2 defined at min_samples" true
    (Float.is_finite fit4.Bench_fit.r_square);
  Alcotest.(check bool) "fit reliable" true (Bench_fit.reliable fit4)

let entry ns r2 =
  {
    Bench_record.ns_per_call = ns;
    r_square = r2;
    advisory = not (Bench_fit.reliable_r2 r2);
  }

let record ?(git_sha = "abc1234") results =
  Bench_record.make ~ocaml:"5.2.0" ~git_sha ~hostname:"testhost"
    ~quota_seconds:0.5 ~unix_time:1754300000.0 results

let test_record_roundtrip () =
  let r =
    record
      [
        ("zeta", entry 12.5 0.998);
        ("alpha", entry 892.0 Float.nan);
      ]
  in
  (* make sorts. *)
  Alcotest.(check (list string))
    "sorted" [ "alpha"; "zeta" ]
    (List.map fst r.Bench_record.results);
  match Bench_record.of_json (Bench_record.to_json r) with
  | Error e -> Alcotest.failf "round-trip: %s" e
  | Ok r' ->
      Alcotest.(check int) "schema" 2 r'.Bench_record.schema;
      Alcotest.(check string) "sha" "abc1234" r'.Bench_record.git_sha;
      Alcotest.(check string) "host" "testhost" r'.Bench_record.hostname;
      let a = List.assoc "alpha" r'.Bench_record.results in
      Alcotest.(check bool)
        "nan r^2 survives as nan" true
        (Float.is_nan a.Bench_record.r_square);
      Alcotest.(check (float 1e-9))
        "ns survives" 892.0 a.Bench_record.ns_per_call

let test_record_v1_compat () =
  (* A PR-1-era record: v1, no git_sha/hostname. *)
  let v1 =
    Jsonx.Obj
      [
        ("v", Jsonx.Int 1);
        ("suite", Jsonx.String "T1");
        ("ocaml", Jsonx.String "5.1.1");
        ("quota_seconds", Jsonx.Float 0.5);
        ("unix_time", Jsonx.Float 1751000000.0);
        ( "results",
          Jsonx.Obj
            [
              ( "episode-run",
                Jsonx.Obj
                  [
                    ("ns_per_call", Jsonx.Float 300.0);
                    ("r_square", Jsonx.Float 0.99);
                  ] );
            ] );
      ]
  in
  match Bench_record.of_json v1 with
  | Error e -> Alcotest.failf "v1 rejected: %s" e
  | Ok r ->
      Alcotest.(check string) "sha default" "unknown" r.Bench_record.git_sha;
      Alcotest.(check string)
        "host default" "unknown" r.Bench_record.hostname;
      Alcotest.(check int) "one result" 1 (List.length r.Bench_record.results)

let test_record_rejects () =
  List.iter
    (fun (label, j) ->
      match Bench_record.of_json j with
      | Ok _ -> Alcotest.failf "accepted %s" label
      | Error _ -> ())
    [
      ("empty object", Jsonx.Obj []);
      ( "future schema",
        Jsonx.Obj [ ("v", Jsonx.Int 99); ("suite", Jsonx.String "T1") ] );
    ]

let verdict =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Bench_gate.verdict_label v))
    ( = )

let find_cmp report name =
  List.find
    (fun c -> c.Bench_gate.bench_name = name)
    report.Bench_gate.compared

let test_gate_self_compare () =
  let r = record [ ("a", entry 100.0 0.99); ("b", entry 55.0 0.34) ] in
  let report = Bench_gate.compare_runs ~old_run:r ~new_run:r () in
  Alcotest.(check int) "no regressions" 0 report.Bench_gate.regressions;
  Alcotest.(check int) "no improvements" 0 report.Bench_gate.improvements;
  List.iter
    (fun c ->
      Alcotest.check verdict c.Bench_gate.bench_name Bench_gate.Within_noise
        c.Bench_gate.verdict)
    report.Bench_gate.compared;
  Alcotest.(check bool)
    "gate passes" false
    (Bench_gate.has_regressions report)

let test_gate_slowdown () =
  let old_run = record [ ("clean", entry 100.0 0.99) ] in
  let new_run = record [ ("clean", entry 200.0 0.99) ] in
  let report = Bench_gate.compare_runs ~old_run ~new_run () in
  Alcotest.check verdict "2x on a clean fit" Bench_gate.Regression
    (find_cmp report "clean").Bench_gate.verdict;
  Alcotest.(check bool) "gate trips" true (Bench_gate.has_regressions report)

let test_gate_improvement () =
  let old_run = record [ ("clean", entry 892.0 0.99) ] in
  let new_run = record [ ("clean", entry 420.0 0.99) ] in
  let report = Bench_gate.compare_runs ~old_run ~new_run () in
  Alcotest.check verdict "halving flags improvement" Bench_gate.Improvement
    (find_cmp report "clean").Bench_gate.verdict;
  Alcotest.(check int) "counted" 1 report.Bench_gate.improvements

let test_gate_noise_widening () =
  (* reclaim-draw scenario: r^2 = 0.34 on both sides. tol = 0.15 +
     0.85*0.66 = 0.711, so a 1.5x shift must stay within noise while a
     2x shift still trips. *)
  let old_run = record [ ("noisy", entry 20.0 0.34) ] in
  let report15 =
    Bench_gate.compare_runs ~old_run
      ~new_run:(record [ ("noisy", entry 30.0 0.34) ])
      ()
  in
  Alcotest.check verdict "1.5x within widened noise" Bench_gate.Within_noise
    (find_cmp report15 "noisy").Bench_gate.verdict;
  let c = find_cmp report15 "noisy" in
  Alcotest.(check (float 1e-9)) "tolerance" 0.711 c.Bench_gate.tolerance;
  let report2 =
    Bench_gate.compare_runs ~old_run
      ~new_run:(record [ ("noisy", entry 40.0 0.34) ])
      ()
  in
  Alcotest.check verdict "2x still trips" Bench_gate.Regression
    (find_cmp report2 "noisy").Bench_gate.verdict

let test_gate_unreliable_fit_skipped () =
  (* A nan or negative r^2 is a degenerate fit, not mere noise: the gate
     refuses to classify it (no verdict at any ratio) and lists it as an
     advisory instead of widening the tolerance to uselessness. *)
  let check_unreliable label old_r2 new_r2 =
    let report =
      Bench_gate.compare_runs
        ~old_run:(record [ ("nofit", entry 10.0 old_r2) ])
        ~new_run:(record [ ("nofit", entry 50.0 new_r2) ])
        ()
    in
    Alcotest.(check (list string))
      (label ^ ": listed unreliable") [ "nofit" ]
      report.Bench_gate.unreliable;
    Alcotest.(check int)
      (label ^ ": not compared") 0
      (List.length report.Bench_gate.compared);
    Alcotest.(check int)
      (label ^ ": no regression despite 5x") 0 report.Bench_gate.regressions;
    Alcotest.(check bool)
      (label ^ ": gate passes") false
      (Bench_gate.has_regressions report)
  in
  check_unreliable "nan old" Float.nan 0.99;
  check_unreliable "negative new" 0.99 (-5.53);
  (* A reliable-but-poor fit still goes through the widening path. *)
  let noisy =
    Bench_gate.compare_runs
      ~old_run:(record [ ("noisy", entry 10.0 0.01) ])
      ~new_run:(record [ ("noisy", entry 10.0 0.01) ])
      ()
  in
  Alcotest.(check (list string)) "r^2 = 0.01 still compared" []
    noisy.Bench_gate.unreliable;
  Alcotest.(check int) "compared" 1 (List.length noisy.Bench_gate.compared)

let test_gate_disjoint_and_skipped () =
  let old_run =
    record [ ("gone", entry 10.0 0.9); ("bad", entry Float.nan 0.9) ]
  in
  let new_run =
    record [ ("new", entry 10.0 0.9); ("bad", entry 12.0 0.9) ]
  in
  let report = Bench_gate.compare_runs ~old_run ~new_run () in
  Alcotest.(check (list string)) "disappeared" [ "gone" ]
    report.Bench_gate.only_old;
  Alcotest.(check (list string)) "appeared" [ "new" ]
    report.Bench_gate.only_new;
  Alcotest.(check (list string)) "skipped" [ "bad" ]
    report.Bench_gate.skipped;
  Alcotest.(check int) "nothing compared" 0
    (List.length report.Bench_gate.compared)

let with_tmp f =
  let path = Filename.temp_file "benchkit" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_save_load () =
  with_tmp (fun path ->
      let r = record [ ("a", entry 1.5 0.9) ] in
      Bench_record.save path r;
      match Bench_record.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok r' ->
          Alcotest.(check bool) "save/load round-trip" true (r = r'))

let test_history_append_load () =
  with_tmp (fun path ->
      Sys.remove path;
      (* append_history must create the file... *)
      let r1 = record ~git_sha:"run1" [ ("a", entry 1.0 0.9) ] in
      let r2 = record ~git_sha:"run2" [ ("a", entry 2.0 0.9) ] in
      Bench_record.append_history path r1;
      Bench_record.append_history path r2;
      match Bench_record.load_history path with
      | Error e -> Alcotest.failf "load_history: %s" e
      | Ok records ->
          Alcotest.(check (list string))
            "...and keep appending, oldest first" [ "run1"; "run2" ]
            (List.map (fun r -> r.Bench_record.git_sha) records))

let test_history_rejects_garbage () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc "{\"v\":2}\nnot json\n";
      close_out oc;
      match Bench_record.load_history path with
      | Ok _ -> Alcotest.fail "accepted malformed history"
      | Error e ->
          Alcotest.(check bool)
            "error names the line" true
            (String.length e > 0))

let () =
  Alcotest.run "benchkit"
    [
      ( "fit",
        [
          Alcotest.test_case "exact linear data" `Quick test_ols_exact;
          Alcotest.test_case "trimmed fit recovers r^2 (self-test)" `Quick
            test_trimmed_recovers_r2;
          Alcotest.test_case "no trim on tiny samples" `Quick
            test_trimmed_noop_small;
          Alcotest.test_case "min-samples r^2 guard" `Quick
            test_min_samples_guard;
        ] );
      ( "record",
        [
          Alcotest.test_case "v2 round-trip" `Quick test_record_roundtrip;
          Alcotest.test_case "v1 compatibility" `Quick test_record_v1_compat;
          Alcotest.test_case "malformed rejected" `Quick test_record_rejects;
          Alcotest.test_case "save/load file" `Quick test_save_load;
          Alcotest.test_case "history append/load" `Quick
            test_history_append_load;
          Alcotest.test_case "history rejects garbage" `Quick
            test_history_rejects_garbage;
        ] );
      ( "gate",
        [
          Alcotest.test_case "self-compare all within noise" `Quick
            test_gate_self_compare;
          Alcotest.test_case "2x slowdown regresses" `Quick
            test_gate_slowdown;
          Alcotest.test_case "improvement detected" `Quick
            test_gate_improvement;
          Alcotest.test_case "low r^2 widens tolerance" `Quick
            test_gate_noise_widening;
          Alcotest.test_case "unreliable fit skipped" `Quick
            test_gate_unreliable_fit_skipped;
          Alcotest.test_case "disjoint and unusable entries" `Quick
            test_gate_disjoint_and_skipped;
        ] );
    ]
