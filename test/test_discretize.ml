let lf = Families.uniform ~lifespan:100.0
let c = 1.0

let test_quantize_rounds_down () =
  (* Period 10 with c = 1 and task 4: floor(9/4) = 2 tasks, period 9. *)
  let s = Schedule.of_list [ 10.0 ] in
  let q = Discretize.quantize lf ~c ~task:4.0 s in
  Alcotest.(check int) "tasks" 2 q.Discretize.total_tasks;
  Alcotest.(check (float 1e-12)) "period" 9.0
    (Schedule.period q.Discretize.schedule 0)

let test_quantize_exact_fit () =
  (* Period 9 with c = 1 and task 4: exactly 2 tasks. *)
  let s = Schedule.of_list [ 9.0 ] in
  let q = Discretize.quantize lf ~c ~task:4.0 s in
  Alcotest.(check int) "tasks" 2 q.Discretize.total_tasks;
  Alcotest.(check (float 1e-12)) "period unchanged" 9.0
    (Schedule.period q.Discretize.schedule 0)

let test_quantize_drops_tiny_periods () =
  let s = Schedule.of_list [ 10.0; 2.0; 8.0 ] in
  (* task 4: periods yield 2, 0, 1 tasks; the middle is dropped. *)
  let q = Discretize.quantize lf ~c ~task:4.0 s in
  Alcotest.(check int) "two kept" 2 (Schedule.num_periods q.Discretize.schedule);
  Alcotest.(check (array int)) "tasks per period" [| 2; 1 |]
    q.Discretize.tasks_per_period

let test_quantize_nothing_fits () =
  let s = Schedule.of_list [ 2.0 ] in
  match Discretize.quantize lf ~c ~task:4.0 s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_quantize_validation () =
  let s = Schedule.of_list [ 10.0 ] in
  (match Discretize.quantize lf ~c ~task:0.0 s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "task = 0 accepted");
  match Discretize.quantize lf ~c:(-1.0) ~task:1.0 s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative c accepted"

let test_efficiency_bounds () =
  let g = Guideline.plan lf ~c in
  let q = Discretize.quantize lf ~c ~task:0.5 g.Guideline.schedule in
  let eff = Discretize.efficiency q in
  Alcotest.(check bool) "fine grain highly efficient" true (eff > 0.9);
  Alcotest.(check bool) "bounded above" true (eff <= 1.05)

let test_efficiency_degrades_with_grain () =
  let g = Guideline.plan lf ~c in
  let eff task =
    Discretize.efficiency (Discretize.quantize lf ~c ~task g.Guideline.schedule)
  in
  Alcotest.(check bool) "coarse grain loses more" true (eff 0.1 >= eff 6.0)

let test_tasks_capacity () =
  let s = Schedule.of_list [ 10.0; 8.0 ] in
  let q = Discretize.quantize lf ~c ~task:2.0 s in
  (* floor(9/2)=4, floor(7/2)=3: 7 tasks, capacity 14. *)
  Alcotest.(check (float 1e-12)) "capacity" 14.0
    (Discretize.tasks_capacity q ~task:2.0)

let test_quantized_work_consistent () =
  let g = Guideline.plan lf ~c in
  let q = Discretize.quantize lf ~c ~task:1.0 g.Guideline.schedule in
  Alcotest.(check (float 1e-9)) "E consistent" q.Discretize.expected_work
    (Schedule.expected_work ~c lf q.Discretize.schedule)

let prop_quantized_capacity_le_continuous =
  QCheck.Test.make
    ~name:"quantized productive time never exceeds the continuous periods"
    ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 10) (float_range 2.0 20.0))
        (float_range 0.2 3.0))
    (fun (ts, task) ->
      let s = Schedule.of_periods ts in
      match Discretize.quantize lf ~c ~task s with
      | exception Invalid_argument _ -> true
      | q ->
          Discretize.tasks_capacity q ~task
          <= Schedule.work_capacity ~c s +. 1e-9)

let prop_fine_tasks_lose_little =
  QCheck.Test.make ~name:"task grain 0.05 keeps >= 95% of continuous E"
    ~count:20
    QCheck.(float_range 40.0 150.0)
    (fun l ->
      let lf = Families.uniform ~lifespan:l in
      let g = Guideline.plan lf ~c:1.0 in
      let q = Discretize.quantize lf ~c:1.0 ~task:0.05 g.Guideline.schedule in
      Discretize.efficiency q >= 0.95)

let () =
  Alcotest.run "discretize"
    [
      ( "discretize",
        [
          Alcotest.test_case "rounds down" `Quick test_quantize_rounds_down;
          Alcotest.test_case "exact fit" `Quick test_quantize_exact_fit;
          Alcotest.test_case "drops tiny periods" `Quick
            test_quantize_drops_tiny_periods;
          Alcotest.test_case "nothing fits" `Quick test_quantize_nothing_fits;
          Alcotest.test_case "validation" `Quick test_quantize_validation;
          Alcotest.test_case "efficiency bounds" `Quick test_efficiency_bounds;
          Alcotest.test_case "grain degrades efficiency" `Quick
            test_efficiency_degrades_with_grain;
          Alcotest.test_case "tasks capacity" `Quick test_tasks_capacity;
          Alcotest.test_case "quantized E consistent" `Quick
            test_quantized_work_consistent;
          QCheck_alcotest.to_alcotest prop_quantized_capacity_le_continuous;
          QCheck_alcotest.to_alcotest prop_fine_tasks_lose_little;
        ] );
    ]
