let mk n = Task.uniform_batch ~n ~duration:2.0 ()

let test_task_make_validation () =
  (match Task.make ~task_id:0 ~duration:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero duration accepted");
  match Task.make ~task_id:0 ~duration:Float.nan () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN duration accepted"

let test_uniform_batch () =
  let tasks = mk 5 in
  Alcotest.(check int) "count" 5 (List.length tasks);
  Alcotest.(check (float 1e-12)) "total" 10.0 (Task.total_duration tasks)

let test_jittered_batch_bounds () =
  let g = Prng.create ~seed:1L in
  let tasks = Task.jittered_batch ~n:1000 ~mean:4.0 ~jitter:0.25 g () in
  List.iter
    (fun t ->
      if t.Task.duration < 3.0 || t.Task.duration > 5.0 then
        Alcotest.failf "duration %g outside jitter band" t.Task.duration)
    tasks

let test_jittered_validation () =
  let g = Prng.create ~seed:1L in
  match Task.jittered_batch ~n:1 ~mean:1.0 ~jitter:1.0 g () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jitter = 1 accepted"

let test_pool_initial_state () =
  let p = Pool.create (mk 4) in
  Alcotest.(check (float 0.0)) "pending work" 8.0 (Pool.pending_work p);
  Alcotest.(check int) "pending count" 4 (Pool.pending_count p);
  Alcotest.(check (float 0.0)) "done work" 0.0 (Pool.done_work p);
  Alcotest.(check bool) "not finished" false (Pool.is_finished p)

let test_checkout_respects_budget () =
  let p = Pool.create (mk 4) in
  match Pool.checkout p ~budget:5.0 with
  | Some b ->
      Alcotest.(check int) "two tasks fit" 2 (List.length b.Pool.tasks);
      Alcotest.(check (float 0.0)) "bundle work" 4.0 b.Pool.work;
      Alcotest.(check (float 0.0)) "pool shrank" 4.0 (Pool.pending_work p);
      Alcotest.(check (float 0.0)) "checked out" 4.0 (Pool.checked_out_work p)
  | None -> Alcotest.fail "expected a bundle"

let test_checkout_none_when_nothing_fits () =
  let p = Pool.create (mk 2) in
  Alcotest.(check bool) "budget too small" true
    (Pool.checkout p ~budget:1.0 = None)

let test_checkout_validation () =
  let p = Pool.create (mk 1) in
  match Pool.checkout p ~budget:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative budget accepted"

let test_commit_moves_to_done () =
  let p = Pool.create (mk 3) in
  (match Pool.checkout p ~budget:4.0 with
  | Some b ->
      Pool.commit p b;
      Alcotest.(check (float 0.0)) "done" 4.0 (Pool.done_work p);
      Alcotest.(check int) "done count" 2 (Pool.done_count p);
      Alcotest.(check (float 0.0)) "nothing out" 0.0 (Pool.checked_out_work p)
  | None -> Alcotest.fail "expected bundle");
  Alcotest.(check bool) "not finished yet" false (Pool.is_finished p)

let test_return_bundle_recycles () =
  let p = Pool.create (mk 3) in
  match Pool.checkout p ~budget:4.0 with
  | Some b ->
      Pool.return_bundle p b;
      Alcotest.(check (float 0.0)) "all pending again" 6.0 (Pool.pending_work p);
      Alcotest.(check int) "count restored" 3 (Pool.pending_count p)
  | None -> Alcotest.fail "expected bundle"

let test_double_commit_rejected () =
  let p = Pool.create (mk 2) in
  match Pool.checkout p ~budget:2.0 with
  | Some b -> (
      Pool.commit p b;
      match Pool.commit p b with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "double commit accepted")
  | None -> Alcotest.fail "expected bundle"

let test_drain_pool_to_finished () =
  let p = Pool.create (mk 5) in
  let rec drain () =
    match Pool.checkout p ~budget:4.0 with
    | Some b ->
        Pool.commit p b;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "finished" true (Pool.is_finished p);
  Alcotest.(check (float 0.0)) "all done" 10.0 (Pool.done_work p)

let test_killed_then_retried () =
  (* A bundle returned after a kill must be scheduled again eventually. *)
  let p = Pool.create (mk 2) in
  (match Pool.checkout p ~budget:2.0 with
  | Some b -> Pool.return_bundle p b
  | None -> Alcotest.fail "bundle 1");
  (match Pool.checkout p ~budget:10.0 with
  | Some b ->
      Alcotest.(check int) "both tasks eventually" 2 (List.length b.Pool.tasks);
      Pool.commit p b
  | None -> Alcotest.fail "bundle 2");
  Alcotest.(check bool) "finished" true (Pool.is_finished p)

let prop_conservation =
  QCheck.Test.make
    ~name:"pending + out + done work is invariant under pool operations"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0.5 5.0))
    (fun durations ->
      let tasks =
        List.mapi (fun i d -> Task.make ~task_id:i ~duration:d ()) durations
      in
      let total = Task.total_duration tasks in
      let p = Pool.create tasks in
      let rng = Prng.create ~seed:5L in
      for _ = 1 to 50 do
        match Pool.checkout p ~budget:(Prng.float_range rng ~lo:0.5 ~hi:8.0) with
        | Some b -> if Prng.bool rng then Pool.commit p b else Pool.return_bundle p b
        | None -> ()
      done;
      Float.abs
        (Pool.pending_work p +. Pool.checked_out_work p +. Pool.done_work p
        -. total)
      < 1e-9)

let () =
  Alcotest.run "task_pool"
    [
      ( "task",
        [
          Alcotest.test_case "make validation" `Quick test_task_make_validation;
          Alcotest.test_case "uniform batch" `Quick test_uniform_batch;
          Alcotest.test_case "jittered bounds" `Quick test_jittered_batch_bounds;
          Alcotest.test_case "jitter validation" `Quick test_jittered_validation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "initial state" `Quick test_pool_initial_state;
          Alcotest.test_case "checkout budget" `Quick
            test_checkout_respects_budget;
          Alcotest.test_case "checkout nothing fits" `Quick
            test_checkout_none_when_nothing_fits;
          Alcotest.test_case "checkout validation" `Quick
            test_checkout_validation;
          Alcotest.test_case "commit" `Quick test_commit_moves_to_done;
          Alcotest.test_case "return recycles" `Quick
            test_return_bundle_recycles;
          Alcotest.test_case "double commit rejected" `Quick
            test_double_commit_rejected;
          Alcotest.test_case "drain to finished" `Quick
            test_drain_pool_to_finished;
          Alcotest.test_case "killed then retried" `Quick
            test_killed_then_retried;
          QCheck_alcotest.to_alcotest prop_conservation;
        ] );
    ]
