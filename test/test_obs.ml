(* Observability layer: Jsonx round-trips, metrics semantics, event
   codec, and the trace round-trip contract — a JSONL trace aggregates
   back to the emitting run's own report. *)

(* ------------------------------------------------------------------ *)
(* Jsonx                                                               *)

let sample_json =
  Jsonx.Obj
    [
      ("null", Jsonx.Null);
      ("flag", Jsonx.Bool true);
      ("int", Jsonx.Int (-42));
      ("float", Jsonx.Float 0.1);
      ("tiny", Jsonx.Float 5e-324);
      ("neg", Jsonx.Float (-1.5));
      ("str", Jsonx.String "a\"b\\c\n\t \xe2\x82\xac");
      ("list", Jsonx.List [ Jsonx.Int 1; Jsonx.Float 2.5; Jsonx.String "x" ]);
      ("obj", Jsonx.Obj [ ("k", Jsonx.Bool false) ]);
    ]

let test_jsonx_roundtrip () =
  match Jsonx.of_string (Jsonx.to_string sample_json) with
  | Ok j -> Alcotest.(check bool) "structurally equal" true (j = sample_json)
  | Error e -> Alcotest.failf "parse error: %s" e

let test_jsonx_float_exact () =
  List.iter
    (fun x ->
      let s = Jsonx.to_string (Jsonx.Float x) in
      match Jsonx.of_string s with
      | Ok (Jsonx.Float y) ->
          Alcotest.(check bool)
            (Printf.sprintf "%h round-trips via %s" x s)
            true
            (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      | Ok (Jsonx.Int y) ->
          Alcotest.(check (float 0.0)) "integral float" x (float_of_int y)
      | Ok _ -> Alcotest.fail "not a number"
      | Error e -> Alcotest.failf "parse error: %s" e)
    [ 0.1; 1.0 /. 3.0; 1e300; 4e-320; -0.0; 13.642857147877194 ]

let test_jsonx_escapes () =
  (* \uXXXX escapes decode to UTF-8, surrogate pairs included. *)
  match Jsonx.of_string {|"€ 😀 \n"|} with
  | Ok (Jsonx.String s) ->
      Alcotest.(check string) "decoded" "\xe2\x82\xac \xf0\x9f\x98\x80 \n" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse error: %s" e

let test_jsonx_errors () =
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 2"; "tru"; "\"unterminated"; "{'a':1}" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_counter_gauge () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "jobs" in
  Alcotest.(check int) "fresh counter" 0 (Obs.Metrics.count c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "after incr+add" 5 (Obs.Metrics.count c);
  Alcotest.(check int) "find-or-create is same instrument" 5
    (Obs.Metrics.count (Obs.Metrics.counter m "jobs"));
  let g = Obs.Metrics.gauge m "depth" in
  Alcotest.(check bool) "fresh gauge is nan" true
    (Float.is_nan (Obs.Metrics.gauge_value g));
  Obs.Metrics.set g 3.5;
  Obs.Metrics.set g 1.25;
  Alcotest.(check (float 0.0)) "last set wins" 1.25 (Obs.Metrics.gauge_value g);
  (* A name denotes one instrument kind. *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs_metrics: \"jobs\" already registered as a non-gauge")
    (fun () -> ignore (Obs.Metrics.gauge m "jobs"))

let test_histogram_quantiles () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  let xs = Array.init 1000 (fun i -> 0.5 +. (0.173 *. float_of_int i)) in
  Array.iter (Obs.Metrics.observe h) xs;
  Alcotest.(check int) "n" 1000 (Obs.Metrics.n_observations h);
  Alcotest.(check (float 1e-6)) "sum exact" (Stats.mean xs *. 1000.0)
    (Obs.Metrics.sum h);
  Alcotest.(check (float 1e-9)) "min exact" xs.(0) (Obs.Metrics.hist_min h);
  Alcotest.(check (float 1e-9)) "max exact" xs.(999) (Obs.Metrics.hist_max h);
  List.iter
    (fun q ->
      let exact = Stats.quantile xs ~q in
      let approx = Obs.Metrics.quantile h ~q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f within 2%% (exact %.4f, sketch %.4f)" q exact
           approx)
        true
        (Float.abs (approx -. exact) <= 0.02 *. exact))
    [ 0.1; 0.25; 0.5; 0.9; 0.99 ];
  Alcotest.(check (float 0.0)) "q=0 is exact min" xs.(0)
    (Obs.Metrics.quantile h ~q:0.0);
  Alcotest.(check (float 0.0)) "q=1 is exact max" xs.(999)
    (Obs.Metrics.quantile h ~q:1.0);
  Alcotest.check_raises "negative observation"
    (Invalid_argument "Obs_metrics.observe: value must be finite and >= 0")
    (fun () -> Obs.Metrics.observe h (-1.0))

let test_histogram_zeros () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "z" in
  List.iter (Obs.Metrics.observe h) [ 0.0; 0.0; 0.0; 10.0 ];
  Alcotest.(check int) "n includes zeros" 4 (Obs.Metrics.n_observations h);
  Alcotest.(check (float 0.0)) "p50 is zero" 0.0
    (Obs.Metrics.quantile h ~q:0.5);
  Alcotest.(check (float 0.0)) "max" 10.0 (Obs.Metrics.quantile h ~q:1.0)

(* ------------------------------------------------------------------ *)
(* Event codec                                                         *)

let all_events =
  Obs.Event.
    [
      Run_started { time = 0.0; source = "farm"; seed = Some 42L };
      Run_started { time = 0.0; source = "monte_carlo"; seed = None };
      Plan_computed
        {
          source = "guideline";
          t0 = 13.642857147877194;
          periods = 13;
          expected_work = 41.066071428571426;
          elapsed = 1.9e-4;
        };
      Episode_started { time = 3.5; ws = 1; ep = 0 };
      Period_dispatched
        { time = 3.5; ws = 1; ep = 0; period = 13.6; assigned = 12.6 };
      Period_completed
        { time = 17.1; ws = 1; ep = 0; period = 13.6; banked = 12.6;
          overhead = 1.0 };
      Period_killed { time = 20.0; ws = 1; ep = 0; lost = 4.5; overhead = 0.0 };
      Owner_returned { time = 20.0; ws = 1; ep = 0 };
      Episode_finished
        { time = 20.0; ws = 1; ep = 0; work_done = 12.6; interrupted = true };
      Pool_drained { time = 88.25; remaining = 0.0 };
      Run_finished { time = 90.0 };
    ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      let line = Jsonx.to_string (Obs.Event.to_json ev) in
      match Jsonx.of_string line with
      | Error e -> Alcotest.failf "reparse failed on %s: %s" line e
      | Ok j -> (
          match Obs.Event.of_json j with
          | Ok ev' ->
              Alcotest.(check bool) ("round-trip " ^ line) true (ev = ev')
          | Error e -> Alcotest.failf "decode failed on %s: %s" line e))
    all_events

let test_event_rejects () =
  List.iter
    (fun s ->
      let j = Result.get_ok (Jsonx.of_string s) in
      match Obs.Event.of_json j with
      | Ok _ -> Alcotest.failf "accepted %s" s
      | Error _ -> ())
    [
      {|{"v":1,"type":"warp_drive","t":0.0}|};
      {|{"v":99,"type":"run_finished","t":0.0}|};
      {|{"type":"run_finished","t":0.0}|};
      {|{"v":1,"type":"episode_started","t":0.0,"ws":"zero","ep":1}|};
      {|{"v":1,"type":"episode_started","t":0.0}|};
    ]

(* ------------------------------------------------------------------ *)
(* Trace round-trip against the live run's accounting                   *)

let farm_config =
  let ws =
    { Farm.ws_life = Families.uniform ~lifespan:100.0; ws_presence_mean = 50.0 }
  in
  {
    Farm.c = 1.0;
    total_work = 500.0;
    workstations = [ ws; ws; ws ];
    policy = Farm.guideline_policy;
    max_time = 1e6;
  }

let test_farm_trace_roundtrip () =
  let path = Filename.temp_file "cs_obs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let report =
        Obs.Sink.with_jsonl_file path (fun sink ->
            Farm.run ~obs:(Obs.create ~sink ()) farm_config ~seed:42L)
      in
      match Trace_report.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok tr ->
          Alcotest.(check (float 1e-6)) "total done" report.Farm.total_done
            tr.Trace_report.total_done;
          Alcotest.(check (float 1e-6)) "total lost" report.Farm.total_lost
            tr.Trace_report.total_lost;
          Alcotest.(check (float 1e-6)) "total overhead"
            report.Farm.total_overhead tr.Trace_report.total_overhead;
          let live f = List.fold_left (fun a w -> a + f w) 0 report.Farm.per_workstation in
          Alcotest.(check int) "episodes"
            (live (fun w -> w.Farm.episodes))
            tr.Trace_report.episodes_started;
          Alcotest.(check int) "completed"
            (live (fun w -> w.Farm.periods_completed))
            tr.Trace_report.periods_completed;
          Alcotest.(check int) "killed"
            (live (fun w -> w.Farm.periods_killed))
            tr.Trace_report.periods_killed;
          (* Per-workstation tables agree too. *)
          List.iter2
            (fun (w : Farm.ws_stats) (s : Trace_report.ws_summary) ->
              Alcotest.(check int) "ws id" w.Farm.ws_id s.Trace_report.ws;
              Alcotest.(check (float 1e-6)) "ws done" w.Farm.work_done
                s.Trace_report.work_done;
              Alcotest.(check (float 1e-6)) "ws overhead" w.Farm.overhead
                s.Trace_report.overhead;
              Alcotest.(check int) "ws killed" w.Farm.periods_killed
                s.Trace_report.periods_killed)
            report.Farm.per_workstation tr.Trace_report.per_ws;
          Alcotest.(check bool) "pool drained recorded" report.Farm.finished
            (tr.Trace_report.pool_drained_at <> None))

let test_monte_carlo_trace_roundtrip () =
  let lf = Families.uniform ~lifespan:100.0 in
  let schedule = (Guideline.plan lf ~c:1.0).Guideline.schedule in
  let path = Filename.temp_file "cs_obs_mc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let est =
        Obs.Sink.with_jsonl_file path (fun sink ->
            Monte_carlo.estimate
              ~obs:(Obs.create ~sink ())
              ~trials:500 lf ~c:1.0 ~schedule ~seed:7L)
      in
      match Trace_report.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok tr ->
          let n = float_of_int est.Monte_carlo.trials in
          Alcotest.(check int) "episodes = trials" est.Monte_carlo.trials
            tr.Trace_report.episodes_started;
          Alcotest.(check (float 1e-6)) "mean work"
            est.Monte_carlo.mean_work
            (tr.Trace_report.total_done /. n);
          Alcotest.(check (float 1e-6)) "mean overhead"
            est.Monte_carlo.mean_overhead
            (tr.Trace_report.total_overhead /. n);
          Alcotest.(check (float 1e-6)) "mean lost" est.Monte_carlo.mean_lost
            (tr.Trace_report.total_lost /. n);
          Alcotest.(check (float 1e-9)) "interrupted fraction"
            est.Monte_carlo.interrupted_fraction
            (float_of_int tr.Trace_report.episodes_interrupted /. n))

let test_metrics_match_report () =
  let m = Obs.Metrics.create () in
  let report = Farm.run ~obs:(Obs.create ~metrics:m ()) farm_config ~seed:3L in
  let live f = List.fold_left (fun a w -> a + f w) 0 report.Farm.per_workstation in
  Alcotest.(check int) "farm.periods_completed"
    (live (fun w -> w.Farm.periods_completed))
    (Obs.Metrics.count (Obs.Metrics.counter m "farm.periods_completed"));
  Alcotest.(check int) "farm.periods_killed"
    (live (fun w -> w.Farm.periods_killed))
    (Obs.Metrics.count (Obs.Metrics.counter m "farm.periods_killed"));
  Alcotest.(check int) "farm.episodes"
    (live (fun w -> w.Farm.episodes))
    (Obs.Metrics.count (Obs.Metrics.counter m "farm.episodes"));
  Alcotest.(check (float 0.0)) "farm.pool_remaining gauge"
    report.Farm.pool_remaining
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge m "farm.pool_remaining"))

let test_disabled_obs_bit_identical () =
  (* The ?obs default must not perturb results in any way. *)
  List.iter
    (fun seed ->
      let plain = Farm.run farm_config ~seed in
      let disabled = Farm.run ~obs:Obs.disabled farm_config ~seed in
      let nulled = Farm.run ~obs:(Obs.create ()) farm_config ~seed in
      List.iter
        (fun (r : Farm.report) ->
          Alcotest.(check (float 0.0)) "makespan" plain.Farm.makespan
            r.Farm.makespan;
          Alcotest.(check (float 0.0)) "done" plain.Farm.total_done
            r.Farm.total_done;
          Alcotest.(check (float 0.0)) "lost" plain.Farm.total_lost
            r.Farm.total_lost;
          Alcotest.(check (float 0.0)) "overhead" plain.Farm.total_overhead
            r.Farm.total_overhead)
        [ disabled; nulled ])
    [ 1L; 42L; 1234L ]

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "value round-trip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "float bit-exactness" `Quick
            test_jsonx_float_exact;
          Alcotest.test_case "unicode escapes" `Quick test_jsonx_escapes;
          Alcotest.test_case "malformed input rejected" `Quick
            test_jsonx_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "histogram quantiles vs exact" `Quick
            test_histogram_quantiles;
          Alcotest.test_case "histogram zeros" `Quick test_histogram_zeros;
        ] );
      ( "events",
        [
          Alcotest.test_case "all variants round-trip" `Quick
            test_event_roundtrip;
          Alcotest.test_case "strict decoding" `Quick test_event_rejects;
        ] );
      ( "trace",
        [
          Alcotest.test_case "farm JSONL round-trip" `Quick
            test_farm_trace_roundtrip;
          Alcotest.test_case "monte-carlo JSONL round-trip" `Quick
            test_monte_carlo_trace_roundtrip;
          Alcotest.test_case "metrics agree with report" `Quick
            test_metrics_match_report;
          Alcotest.test_case "disabled obs is bit-identical" `Quick
            test_disabled_obs_bit_identical;
        ] );
    ]
