let c = 1.0
let lf = Families.uniform ~lifespan:100.0

let test_probabilities_sum_to_one () =
  let s = Schedule.of_list [ 10.0; 8.0; 6.0 ] in
  let d = Work_distribution.of_schedule lf ~c s in
  let total =
    Array.fold_left (fun a (_, pr) -> a +. pr) 0.0 d.Work_distribution.outcomes
  in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total

let test_mean_equals_expected_work () =
  (* The central identity: the law's mean IS eq. 2.1. *)
  List.iter
    (fun (name, lf) ->
      let g = Guideline.plan lf ~c in
      let d = Work_distribution.of_schedule lf ~c g.Guideline.schedule in
      Alcotest.(check (float 1e-9)) (name ^ ": mean = E")
        (Schedule.expected_work ~c lf g.Guideline.schedule)
        d.Work_distribution.mean)
    (Families.all_paper_scenarios ~c)

let test_hand_computed_law () =
  (* Uniform L = 10, S = [4; 3] (ends 4, 7; works 3, 5):
     P(0) = 1 - p(4) = 0.4; P(3) = p(4) - p(7) = 0.3; P(5) = p(7) = 0.3. *)
  let lf = Families.uniform ~lifespan:10.0 in
  let d = Work_distribution.of_schedule lf ~c (Schedule.of_list [ 4.0; 3.0 ]) in
  match d.Work_distribution.outcomes with
  | [| (w0, p0); (w1, p1); (w2, p2) |] ->
      Alcotest.(check (float 1e-12)) "w0" 0.0 w0;
      Alcotest.(check (float 1e-12)) "p0" 0.4 p0;
      Alcotest.(check (float 1e-12)) "w1" 3.0 w1;
      Alcotest.(check (float 1e-12)) "p1" 0.3 p1;
      Alcotest.(check (float 1e-12)) "w2" 5.0 w2;
      Alcotest.(check (float 1e-12)) "p2" 0.3 p2
  | _ -> Alcotest.fail "expected three outcomes"

let test_single_period_all_or_nothing () =
  let lf = Families.uniform ~lifespan:10.0 in
  let d = Work_distribution.of_schedule lf ~c (Schedule.of_list [ 5.0 ]) in
  Alcotest.(check int) "two outcomes" 2
    (Array.length d.Work_distribution.outcomes);
  Alcotest.(check (float 1e-12)) "P(zero)" 0.5 (Work_distribution.prob_zero d);
  Alcotest.(check (float 1e-12)) "P(>= 4)" 0.5
    (Work_distribution.prob_at_least d 4.0)

let test_unproductive_periods_merge () =
  (* Two sub-c periods add no outcomes beyond zero work. *)
  let lf = Families.uniform ~lifespan:10.0 in
  let d =
    Work_distribution.of_schedule lf ~c (Schedule.of_list [ 0.5; 0.5; 5.0 ])
  in
  Alcotest.(check int) "zero and one work level" 2
    (Array.length d.Work_distribution.outcomes)

let test_quantiles () =
  let lf = Families.uniform ~lifespan:10.0 in
  let d = Work_distribution.of_schedule lf ~c (Schedule.of_list [ 4.0; 3.0 ]) in
  Alcotest.(check (float 1e-12)) "q=0.2" 0.0 (Work_distribution.quantile d ~q:0.2);
  Alcotest.(check (float 1e-12)) "q=0.5" 3.0 (Work_distribution.quantile d ~q:0.5);
  Alcotest.(check (float 1e-12)) "q=0.9" 5.0 (Work_distribution.quantile d ~q:0.9);
  match Work_distribution.quantile d ~q:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q > 1 accepted"

let test_matches_monte_carlo () =
  let g = Guideline.plan lf ~c in
  let d = Work_distribution.of_schedule lf ~c g.Guideline.schedule in
  let est =
    Monte_carlo.estimate ~trials:40_000 lf ~c ~schedule:g.Guideline.schedule
      ~seed:2L
  in
  Alcotest.(check bool) "MC mean within 2% of law mean" true
    (Float.abs (est.Monte_carlo.mean_work -. d.Work_distribution.mean)
    < 0.02 *. d.Work_distribution.mean)

let test_variance_nonnegative_and_consistent () =
  let g = Guideline.plan lf ~c in
  let d = Work_distribution.of_schedule lf ~c g.Guideline.schedule in
  Alcotest.(check bool) "variance >= 0" true (d.Work_distribution.variance >= 0.0);
  Alcotest.(check (float 1e-9)) "stddev = sqrt variance"
    (sqrt d.Work_distribution.variance)
    d.Work_distribution.stddev

let test_validation () =
  match Work_distribution.of_schedule lf ~c:(-1.0) (Schedule.of_list [ 1.0 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative c accepted"

let prop_mean_identity =
  QCheck.Test.make
    ~name:"distribution mean equals eq. 2.1 for random schedules" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 15) (float_range 0.3 12.0))
    (fun ts ->
      let s = Schedule.of_periods ts in
      let d = Work_distribution.of_schedule lf ~c s in
      Float.abs (d.Work_distribution.mean -. Schedule.expected_work ~c lf s)
      < 1e-9)

let prop_prob_at_least_monotone =
  QCheck.Test.make ~name:"P(work >= w) is nonincreasing in w" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 10) (float_range 0.5 10.0))
    (fun ts ->
      let s = Schedule.of_periods ts in
      let d = Work_distribution.of_schedule lf ~c s in
      let ok = ref true in
      let prev = ref 1.0 in
      for i = 0 to 20 do
        let w = float_of_int i *. 2.0 in
        let p = Work_distribution.prob_at_least d w in
        if p > !prev +. 1e-12 then ok := false;
        prev := p
      done;
      !ok)

let () =
  Alcotest.run "work_distribution"
    [
      ( "work_distribution",
        [
          Alcotest.test_case "probabilities sum to 1" `Quick
            test_probabilities_sum_to_one;
          Alcotest.test_case "mean = eq 2.1" `Quick
            test_mean_equals_expected_work;
          Alcotest.test_case "hand-computed law" `Quick test_hand_computed_law;
          Alcotest.test_case "all or nothing" `Quick
            test_single_period_all_or_nothing;
          Alcotest.test_case "unproductive merge" `Quick
            test_unproductive_periods_merge;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "matches Monte Carlo" `Quick
            test_matches_monte_carlo;
          Alcotest.test_case "variance consistent" `Quick
            test_variance_nonnegative_and_consistent;
          Alcotest.test_case "validation" `Quick test_validation;
          QCheck_alcotest.to_alcotest prop_mean_identity;
          QCheck_alcotest.to_alcotest prop_prob_at_least_monotone;
        ] );
    ]
