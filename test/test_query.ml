(* The read side of the observability stack: meta headers, trace
   loading/filtering/diffing (Obs_query), export format round-trips
   (Obs_export folded stacks and Prometheus exposition), the snapshot
   ring, and the Obs_fork gather edge cases. *)

let with_temp_file suffix k =
  let path = Filename.temp_file "cs_query" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> k path)

let write_file path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Meta headers                                                       *)

let test_meta_roundtrip () =
  let m =
    Obs_meta.make ~git_sha:"abc123" ~seed:42L ~jobs:2
      ~scenario:"simulate family=uniform" ()
  in
  let m' = ok (Obs_meta.of_json (ok (Jsonx.of_string (Jsonx.to_string (Obs_meta.to_json m))))) in
  Alcotest.(check bool) "round-trips" true (m = m');
  (* Optional fields absent round-trip too. *)
  let bare = { m with Obs_meta.git_sha = None; seed = None; jobs = None; scenario = None } in
  let bare' = ok (Obs_meta.of_json (Obs_meta.to_json bare)) in
  Alcotest.(check bool) "bare round-trips" true (bare = bare')

let test_meta_rejects () =
  let m = Obs_meta.make ~git_sha:"abc" ~seed:1L () in
  let j = Obs_meta.to_json m in
  let mutate key v =
    match j with
    | Jsonx.Obj fields ->
        Jsonx.Obj (List.map (fun (k, x) -> if k = key then (k, v) else (k, x)) fields)
    | _ -> assert false
  in
  List.iter
    (fun (label, bad) ->
      match Obs_meta.of_json bad with
      | Ok _ -> Alcotest.failf "accepted %s" label
      | Error _ -> ())
    [
      ("wrong meta version", mutate "v" (Jsonx.Int 99));
      ("wrong event schema", mutate "schema" (Jsonx.Int 999));
      ("wrong type tag", mutate "type" (Jsonx.String "event"));
      ("missing schema", Jsonx.Obj [ ("v", Jsonx.Int 1); ("type", Jsonx.String "meta") ]);
    ]

(* ------------------------------------------------------------------ *)
(* Trace loading                                                      *)

let sample_events =
  Obs_event.
    [
      Run_started { time = 0.0; source = "test"; seed = Some 7L };
      Episode_started { time = 0.0; ws = 0; ep = 0 };
      Period_dispatched { time = 0.0; ws = 0; ep = 0; period = 4.0; assigned = 3.0 };
      Period_completed { time = 4.0; ws = 0; ep = 0; period = 4.0; banked = 3.0; overhead = 1.0 };
      Period_dispatched { time = 4.0; ws = 0; ep = 0; period = 6.0; assigned = 5.0 };
      Period_killed { time = 7.0; ws = 0; ep = 0; lost = 2.0; overhead = 1.0 };
      Owner_returned { time = 7.0; ws = 0; ep = 0 };
      Episode_finished { time = 7.0; ws = 0; ep = 0; work_done = 3.0; interrupted = true };
      Episode_started { time = 8.0; ws = 1; ep = 1 };
      Period_dispatched { time = 8.0; ws = 1; ep = 1; period = 5.0; assigned = 4.0 };
      Period_completed { time = 13.0; ws = 1; ep = 1; period = 5.0; banked = 4.0; overhead = 1.0 };
      Episode_finished { time = 13.0; ws = 1; ep = 1; work_done = 4.0; interrupted = false };
      Run_finished { time = 13.0 };
    ]

let event_lines events =
  List.map (fun ev -> Jsonx.to_string (Obs_event.to_json ev)) events

let test_load_with_header () =
  with_temp_file ".jsonl" (fun path ->
      let meta = Obs_meta.make ~git_sha:"deadbeef" ~seed:7L ~jobs:1 () in
      write_file path
        ((Jsonx.to_string (Obs_meta.to_json meta) :: event_lines sample_events));
      let t = ok (Obs_query.load path) in
      (match t.Obs_query.meta with
      | Some m ->
          Alcotest.(check bool) "seed surfaced" true (m.Obs_meta.seed = Some 7L)
      | None -> Alcotest.fail "meta not surfaced");
      Alcotest.(check int) "events loaded" (List.length sample_events)
        (List.length t.Obs_query.events);
      Alcotest.(check bool) "events equal" true
        (t.Obs_query.events = sample_events);
      (* Trace_report.load validates and skips the same header. *)
      let summary = ok (Trace_report.load path) in
      Alcotest.(check int) "summary events" (List.length sample_events)
        summary.Trace_report.events)

let test_load_headerless_and_bad_header () =
  with_temp_file ".jsonl" (fun path ->
      write_file path (event_lines sample_events);
      let t = ok (Obs_query.load path) in
      Alcotest.(check bool) "no meta" true (t.Obs_query.meta = None);
      (* A meta line with the wrong schema version is a load error. *)
      write_file path
        ({|{"v":1,"type":"meta","schema":999}|} :: event_lines sample_events);
      (match Obs_query.load path with
      | Ok _ -> Alcotest.fail "accepted wrong-schema header"
      | Error msg ->
          Alcotest.(check bool) "error names line 1" true
            (contains_sub msg ":1:"));
      match Trace_report.load path with
      | Ok _ -> Alcotest.fail "Trace_report accepted wrong-schema header"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Filtering and episode rows                                         *)

let test_filter () =
  let by_kind = Obs_query.filter ~kind:"period_completed" sample_events in
  Alcotest.(check int) "kind" 2 (List.length by_kind);
  let by_ws = Obs_query.filter ~ws:1 sample_events in
  Alcotest.(check int) "ws" 4 (List.length by_ws);
  let window = Obs_query.filter ~since:4.0 ~until:8.0 sample_events in
  (* t in [4,8]: completed@4, dispatched@4, killed@7, owner@7, finished@7,
     started@8, dispatched@8. *)
  Alcotest.(check int) "window" 7 (List.length window);
  let none = Obs_query.filter ~kind:"plan_computed" sample_events in
  Alcotest.(check int) "absent kind" 0 (List.length none);
  Alcotest.(check int) "no criteria = identity"
    (List.length sample_events)
    (List.length (Obs_query.filter sample_events))

let test_episodes () =
  match Obs_query.episodes sample_events with
  | [ a; b ] ->
      Alcotest.(check int) "ws of first" 0 a.Obs_query.e_ws;
      Alcotest.(check int) "dispatched" 2 a.Obs_query.e_dispatched;
      Alcotest.(check int) "completed" 1 a.Obs_query.e_completed;
      Alcotest.(check int) "killed" 1 a.Obs_query.e_killed;
      Alcotest.(check (float 1e-12)) "work" 3.0 a.Obs_query.e_work;
      Alcotest.(check (float 1e-12)) "lost" 2.0 a.Obs_query.e_lost;
      Alcotest.(check (float 1e-12)) "overhead" 2.0 a.Obs_query.e_overhead;
      Alcotest.(check bool) "interrupted" true a.Obs_query.e_interrupted;
      Alcotest.(check bool) "finish" true (a.Obs_query.e_finish = Some 7.0);
      Alcotest.(check bool) "second not interrupted" false
        b.Obs_query.e_interrupted
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Diffing                                                            *)

let test_diff_identical () =
  Alcotest.(check bool) "identical" true
    (Obs_query.diff sample_events sample_events = None)

let test_diff_ignores_wall_time () =
  (* Planning wall time differs between every pair of runs; only the
     simulated-time payload is under the determinism contract. *)
  let plan elapsed =
    Obs_event.Plan_computed
      { source = "guideline"; t0 = 13.6; periods = 13; expected_work = 41.0; elapsed }
  in
  Alcotest.(check bool) "elapsed masked" true
    (Obs_query.diff [ plan 0.0017 ] [ plan 0.0093 ] = None);
  let other =
    Obs_event.Plan_computed
      { source = "guideline"; t0 = 14.0; periods = 13; expected_work = 41.0; elapsed = 0.0017 }
  in
  Alcotest.(check bool) "sim payload still compared" true
    (Obs_query.diff [ plan 0.0017 ] [ other ] <> None)

let test_diff_mutation () =
  let mutated =
    List.mapi
      (fun i ev ->
        if i = 5 then
          Obs_event.Period_killed
            { time = 7.0; ws = 0; ep = 0; lost = 2.5; overhead = 1.0 }
        else ev)
      sample_events
  in
  match Obs_query.diff ~context:2 sample_events mutated with
  | None -> Alcotest.fail "missed the mutation"
  | Some d ->
      Alcotest.(check int) "index" 5 d.Obs_query.d_index;
      Alcotest.(check int) "context bounded" 2
        (List.length d.Obs_query.d_context);
      Alcotest.(check bool) "both sides present" true
        (d.Obs_query.d_left <> None && d.Obs_query.d_right <> None);
      Alcotest.(check bool) "context is the shared prefix tail" true
        (d.Obs_query.d_context
        = [ List.nth sample_events 3; List.nth sample_events 4 ])

let test_diff_truncation () =
  let short = List.filteri (fun i _ -> i < 4) sample_events in
  match Obs_query.diff sample_events short with
  | None -> Alcotest.fail "missed the truncation"
  | Some d ->
      Alcotest.(check int) "index" 4 d.Obs_query.d_index;
      Alcotest.(check bool) "right ended" true (d.Obs_query.d_right = None);
      Alcotest.(check bool) "left present" true (d.Obs_query.d_left <> None)

(* ------------------------------------------------------------------ *)
(* Folded stacks                                                      *)

let recorded_spans () =
  let r = Obs_span.create () in
  Obs_span.record r "root" (fun () ->
      Obs_span.record r "plan" (fun () ->
          Obs_span.record r "solve; fast" (fun () -> ()));
      Obs_span.record r "mc" (fun () -> ());
      Obs_span.record r "mc" (fun () -> ()));
  r

let test_folded_roundtrip () =
  let r = recorded_spans () in
  let folded = Obs_export.folded_of_spans (Obs_span.spans r) in
  let n = ok (Obs_export.validate_folded folded) in
  Alcotest.(check int) "distinct paths" 4 n;
  let paths = List.map (fun l -> List.hd (String.split_on_char ' ' l)) folded in
  Alcotest.(check (list string)) "paths, sorted, sanitized"
    [ "root"; "root;mc"; "root;plan"; "root;plan;solve__fast" ]
    paths;
  (* Chrome JSON → spans → folded gives the same stack set. *)
  let chrome = Obs_span.to_chrome_json r in
  let spans' = ok (Obs_export.spans_of_chrome chrome) in
  let folded' = Obs_export.folded_of_spans spans' in
  Alcotest.(check (list string)) "chrome round-trip" folded folded'

let test_folded_rejects () =
  List.iter
    (fun (label, lines) ->
      match Obs_export.validate_folded lines with
      | Ok _ -> Alcotest.failf "accepted %s" label
      | Error _ -> ())
    [
      ("no weight", [ "a;b" ]);
      ("float weight", [ "a;b 1.5" ]);
      ("negative weight", [ "a;b -3" ]);
      ("empty frame", [ "a;;b 1" ]);
      ("space in stack", [ "a b;c 1" ]);
    ]

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                              *)

let test_prometheus_roundtrip () =
  let reg = Obs_metrics.create () in
  Obs_metrics.add (Obs_metrics.counter reg "episode.runs") 3;
  Obs_metrics.set (Obs_metrics.gauge reg "farm.pool_remaining") 12.5;
  let h = Obs_metrics.histogram reg "episode.period_length" in
  List.iter (Obs_metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  let lines = Obs_export.prometheus reg in
  let samples = ok (Obs_export.validate_prometheus lines) in
  (* counter + gauge + (3 quantiles + sum + count). *)
  Alcotest.(check int) "samples" 7 samples;
  Alcotest.(check bool) "counter line present" true
    (List.mem "cs_episode_runs_total 3" lines);
  Alcotest.(check bool) "gauge line present" true
    (List.mem "cs_farm_pool_remaining 12.5" lines);
  Alcotest.(check bool) "count line present" true
    (List.mem "cs_episode_period_length_count 4" lines);
  (* An empty histogram renders NaN quantiles that still validate. *)
  let reg2 = Obs_metrics.create () in
  ignore (Obs_metrics.histogram reg2 "empty.hist");
  Alcotest.(check int) "empty histogram samples" 5
    (ok (Obs_export.validate_prometheus (Obs_export.prometheus reg2)))

let test_prometheus_rejects () =
  List.iter
    (fun (label, lines) ->
      match Obs_export.validate_prometheus lines with
      | Ok _ -> Alcotest.failf "accepted %s" label
      | Error _ -> ())
    [
      ("sample without TYPE", [ "cs_x 1" ]);
      ("bad metric name", [ "# TYPE 9bad counter"; "9bad 1" ]);
      ( "unknown type",
        [ "# TYPE cs_x matrix"; "cs_x 1" ] );
      ("unparsable value", [ "# TYPE cs_x gauge"; "cs_x twelve" ]);
      ("malformed comment", [ "# NOPE cs_x gauge" ]);
      ( "bad label grammar",
        [ "# TYPE cs_x summary"; "cs_x{quantile=0.5} 1" ] );
    ]

let test_prometheus_of_trace () =
  let reg = Obs_query.metrics_of_events sample_events in
  let lines = Obs_export.prometheus reg in
  let _ = ok (Obs_export.validate_prometheus lines) in
  Alcotest.(check bool) "periods dispatched counted" true
    (List.mem "cs_trace_periods_dispatched_total 3" lines);
  Alcotest.(check bool) "pool gauge absent without Pool_drained" true
    (List.exists
       (String.ends_with ~suffix:"pool_remaining NaN")
       lines)

(* ------------------------------------------------------------------ *)
(* Snapshot ring                                                      *)

let test_snapshot_ring () =
  let reg = Obs_metrics.create () in
  let c = Obs_metrics.counter reg "n" in
  let snap = Obs_snapshot.create ~capacity:3 ~every:10 reg in
  Obs_snapshot.tick snap ~at:5;
  Alcotest.(check int) "below the mark" 0 (Obs_snapshot.captured snap);
  Obs_metrics.incr c;
  Obs_snapshot.tick snap ~at:10;
  Obs_snapshot.tick snap ~at:12;
  Alcotest.(check int) "one capture, then re-armed" 1
    (Obs_snapshot.captured snap);
  (* A tick that jumps several marks captures once. *)
  Obs_metrics.incr c;
  Obs_snapshot.tick snap ~at:47;
  Alcotest.(check int) "coarse tick captures once" 2
    (Obs_snapshot.captured snap);
  Obs_snapshot.tick snap ~at:50;
  Obs_snapshot.tick snap ~at:60;
  Obs_snapshot.tick snap ~at:70;
  Alcotest.(check int) "total captures" 5 (Obs_snapshot.captured snap);
  Alcotest.(check int) "ring bound" 2 (Obs_snapshot.dropped snap);
  let ats = List.map (fun e -> e.Obs_snapshot.at) (Obs_snapshot.entries snap) in
  Alcotest.(check (list int)) "oldest evicted first" [ 50; 60; 70 ] ats;
  Alcotest.(check bool) "last_at" true (Obs_snapshot.last_at snap = Some 70)

let test_snapshot_jsonl_roundtrip () =
  let reg = Obs_metrics.create () in
  let c = Obs_metrics.counter reg "runs" in
  let g = Obs_metrics.gauge reg "level" in
  let h = Obs_metrics.histogram reg "len" in
  let snap = Obs_snapshot.create ~every:1 reg in
  Obs_metrics.incr c;
  Obs_metrics.set g 3.25;
  Obs_metrics.observe h 2.0;
  Obs_snapshot.tick snap ~at:1;
  Obs_metrics.incr c;
  Obs_metrics.observe h 8.0;
  Obs_snapshot.tick snap ~at:2;
  with_temp_file ".jsonl" (fun path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs_snapshot.write_jsonl snap oc);
      let entries = ok (Obs_snapshot.load path) in
      Alcotest.(check bool) "round-trips structurally" true
        (entries = Obs_snapshot.entries snap))

let test_snapshot_determinism_across_domains () =
  let lf = Families.uniform ~lifespan:30.0 in
  let plan = Guideline.plan lf ~c:1.0 in
  let run domains =
    let reg = Obs_metrics.create () in
    let obs = Obs.create ~metrics:reg () in
    let snap = Obs_snapshot.create ~every:600 reg in
    let (_ : Monte_carlo.estimate) =
      Monte_carlo.estimate ~obs ?domains ~snapshot:snap ~trials:2_000 lf
        ~c:1.0 ~schedule:plan.Guideline.schedule ~seed:99L
    in
    Obs_snapshot.entries snap
  in
  let serial = run None and parallel = run (Some 2) in
  let ats = List.map (fun e -> e.Obs_snapshot.at) in
  Alcotest.(check (list int)) "same capture grid" (ats serial) (ats parallel);
  Alcotest.(check bool) "final capture at trials" true
    (List.exists (fun e -> e.Obs_snapshot.at = 2_000) serial);
  (* Counters and sim-time histograms must agree bit-for-bit; wall-time
     histograms (episode.elapsed) legitimately differ. *)
  List.iter2
    (fun (a : Obs_snapshot.entry) (b : Obs_snapshot.entry) ->
      Alcotest.(check bool) "counters identical" true
        (a.Obs_snapshot.metrics.Obs_metrics.snap_counters
        = b.Obs_snapshot.metrics.Obs_metrics.snap_counters);
      let period_length (s : Obs_metrics.snapshot) =
        List.assoc_opt "episode.period_length"
          s.Obs_metrics.snap_histograms
      in
      Alcotest.(check bool) "sim-time histogram identical" true
        (period_length a.Obs_snapshot.metrics
        = period_length b.Obs_snapshot.metrics))
    serial parallel

(* ------------------------------------------------------------------ *)
(* Obs_fork gather edge cases                                         *)

let test_gather_zero_event_chunks () =
  let collected = ref [] in
  let obs =
    Obs.create ~sink:(Obs.Sink.Custom (fun ev -> collected := ev :: !collected)) ()
  in
  let kids = Obs_fork.scatter obs ~n:4 in
  (* Only chunks 1 and 3 emit anything. *)
  List.iter
    (fun k ->
      Obs.emit (Obs_fork.child kids k)
        (Obs.Event.Pool_drained { time = float_of_int k; remaining = 0.0 }))
    [ 1; 3 ];
  Obs_fork.gather obs kids;
  let times =
    List.rev_map
      (function
        | Obs.Event.Pool_drained { time; _ } -> time | _ -> Float.nan)
      !collected
  in
  Alcotest.(check (list (float 0.0))) "chunk order, empties skipped"
    [ 1.0; 3.0 ] times

let test_gather_spans_only_chunk () =
  let recorder = Obs_span.create () in
  let obs = Obs.create ~spans:recorder () in
  let kids = Obs_fork.scatter obs ~n:2 in
  (match Obs.span_recorder (Obs_fork.child kids 1) with
  | Some r -> Obs_span.record r "work" (fun () -> ())
  | None -> Alcotest.fail "child has no recorder");
  Obs_fork.gather obs kids;
  Alcotest.(check int) "span absorbed" 1 (Obs_span.count recorder);
  Alcotest.(check (list string)) "span name" [ "work" ]
    (List.map (fun s -> s.Obs_span.name) (Obs_span.spans recorder))

let test_gather_sink_failure_raises () =
  (* A parent sink that fails must surface the exception from gather,
     not drop the buffered events silently. *)
  let obs =
    Obs.create ~sink:(Obs.Sink.Custom (fun _ -> failwith "sink full")) ()
  in
  let kids = Obs_fork.scatter obs ~n:1 in
  Obs.emit (Obs_fork.child kids 0) (Obs.Event.Run_finished { time = 0.0 });
  (match Obs_fork.gather obs kids with
  | () -> Alcotest.fail "swallowed the sink failure"
  | exception Failure msg -> Alcotest.(check string) "propagated" "sink full" msg);
  (* Same through a Jsonl sink whose channel was closed under it. *)
  with_temp_file ".jsonl" (fun path ->
      let oc = open_out path in
      let obs = Obs.create ~sink:(Obs.Sink.Jsonl oc) () in
      let kids = Obs_fork.scatter obs ~n:1 in
      Obs.emit (Obs_fork.child kids 0) (Obs.Event.Run_finished { time = 0.0 });
      close_out oc;
      match Obs_fork.gather obs kids with
      | () -> Alcotest.fail "swallowed the closed-channel write"
      | exception Sys_error _ -> ())

let () =
  Alcotest.run "query"
    [
      ( "meta",
        [
          Alcotest.test_case "round-trip" `Quick test_meta_roundtrip;
          Alcotest.test_case "strict decoding" `Quick test_meta_rejects;
        ] );
      ( "load",
        [
          Alcotest.test_case "with provenance header" `Quick
            test_load_with_header;
          Alcotest.test_case "headerless and bad header" `Quick
            test_load_headerless_and_bad_header;
        ] );
      ( "query",
        [
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "episode rows" `Quick test_episodes;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical streams" `Quick test_diff_identical;
          Alcotest.test_case "wall time ignored" `Quick
            test_diff_ignores_wall_time;
          Alcotest.test_case "mutation pinpointed" `Quick test_diff_mutation;
          Alcotest.test_case "truncation pinpointed" `Quick
            test_diff_truncation;
        ] );
      ( "folded",
        [
          Alcotest.test_case "round-trip and chrome import" `Quick
            test_folded_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_folded_rejects;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "round-trip" `Quick test_prometheus_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick
            test_prometheus_rejects;
          Alcotest.test_case "from trace events" `Quick
            test_prometheus_of_trace;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "ring semantics" `Quick test_snapshot_ring;
          Alcotest.test_case "jsonl round-trip" `Quick
            test_snapshot_jsonl_roundtrip;
          Alcotest.test_case "deterministic across domains" `Quick
            test_snapshot_determinism_across_domains;
        ] );
      ( "fork",
        [
          Alcotest.test_case "zero-event chunks" `Quick
            test_gather_zero_event_chunks;
          Alcotest.test_case "spans-only chunk" `Quick
            test_gather_spans_only_chunk;
          Alcotest.test_case "sink failure surfaces" `Quick
            test_gather_sink_failure_raises;
        ] );
    ]
