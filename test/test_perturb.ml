let lf = Families.uniform ~lifespan:100.0
let c = 1.0

let test_shift_changes_one_period () =
  let s = Schedule.of_list [ 5.0; 4.0; 3.0 ] in
  match Perturb.shift s ~k:1 ~delta:0.5 with
  | Some s' ->
      Alcotest.(check (float 0.0)) "period 0 unchanged" 5.0 (Schedule.period s' 0);
      Alcotest.(check (float 0.0)) "period 1 shifted" 4.5 (Schedule.period s' 1);
      Alcotest.(check (float 0.0)) "period 2 unchanged" 3.0 (Schedule.period s' 2)
  | None -> Alcotest.fail "shift should be valid"

let test_shift_rejects_nonpositive_result () =
  let s = Schedule.of_list [ 5.0; 4.0 ] in
  Alcotest.(check bool) "None on collapse" true
    (Perturb.shift s ~k:1 ~delta:(-4.0) = None)

let test_shift_out_of_range () =
  let s = Schedule.of_list [ 5.0 ] in
  match Perturb.shift s ~k:3 ~delta:0.1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range k accepted"

let test_perturb_preserves_duration () =
  let s = Schedule.of_list [ 5.0; 4.0; 3.0 ] in
  match Perturb.perturb s ~k:0 ~delta:0.7 with
  | Some s' ->
      Alcotest.(check (float 1e-12)) "total preserved"
        (Schedule.total_duration s) (Schedule.total_duration s');
      Alcotest.(check (float 0.0)) "k grew" 5.7 (Schedule.period s' 0);
      Alcotest.(check (float 1e-12)) "k+1 shrank" 3.3 (Schedule.period s' 1)
  | None -> Alcotest.fail "perturbation should be valid"

let test_perturb_rejects_collapse () =
  let s = Schedule.of_list [ 5.0; 1.0 ] in
  Alcotest.(check bool) "None when k+1 collapses" true
    (Perturb.perturb s ~k:0 ~delta:1.0 = None);
  Alcotest.(check bool) "None when k collapses" true
    (Perturb.perturb s ~k:0 ~delta:(-5.0) = None)

let test_perturb_out_of_range () =
  let s = Schedule.of_list [ 5.0; 4.0 ] in
  match Perturb.perturb s ~k:1 ~delta:0.1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k+1 out of range accepted"

(* --- Theorem 5.1 in action -------------------------------------------- *)

let test_recurrence_schedule_beats_perturbations () =
  (* A schedule built from the recurrence on a concave (here linear) life
     function must have a nonnegative perturbation margin. *)
  let g = Guideline.plan lf ~c in
  let m = Perturb.perturbation_margin ~min_period:c lf ~c g.Guideline.schedule in
  Alcotest.(check bool) "Thm 5.1 margin >= 0" true (m.Perturb.margin >= -1e-9)

let test_geo_inc_guideline_beats_perturbations () =
  let lfi = Families.geometric_increasing ~lifespan:30.0 in
  let g = Guideline.plan lfi ~c in
  if Schedule.num_periods g.Guideline.schedule >= 2 then begin
    let m =
      Perturb.perturbation_margin ~min_period:c lfi ~c g.Guideline.schedule
    in
    Alcotest.(check bool) "Thm 5.1 margin >= 0" true (m.Perturb.margin >= -1e-9)
  end

let test_bad_schedule_detected_by_perturbation () =
  (* Equal periods on uniform risk violate the recurrence; some
     perturbation must strictly improve them. *)
  let s = Schedule.of_list [ 10.0; 10.0; 10.0; 10.0 ] in
  let m = Perturb.perturbation_margin lf ~c s in
  Alcotest.(check bool) "improvable" true (m.Perturb.margin < 0.0)

let test_optimal_schedule_beats_shifts () =
  (* Theorem 3.1's precondition: the exact optimal schedule beats all
     shifts. *)
  let exact = Exact.uniform ~c ~lifespan:100.0 in
  let m = Perturb.shift_margin lf ~c exact.Exact.schedule in
  Alcotest.(check bool) "shift margin >= 0" true (m.Perturb.margin >= -1e-9)

let test_margin_requires_two_periods () =
  let s = Schedule.of_list [ 5.0 ] in
  match Perturb.perturbation_margin lf ~c s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single-period accepted"

let prop_thm51_recurrence_schedules_locally_optimal =
  (* Theorem 5.1 over random starting periods and concave shapes. *)
  QCheck.Test.make
    ~name:"recurrence-generated schedules beat perturbations (Thm 5.1)"
    ~count:40
    QCheck.(triple (float_range 8.0 25.0) (float_range 0.4 1.5) (int_range 1 3))
    (fun (t0, c, dsel) ->
      let lf =
        match dsel with
        | 1 -> Families.uniform ~lifespan:120.0
        | 2 -> Families.polynomial ~d:2 ~lifespan:120.0
        | _ -> Families.polynomial ~d:3 ~lifespan:120.0
      in
      let g = Recurrence.generate lf ~c ~t0 in
      (* Strip a trailing sub-c period: Thm 5.1's algebra uses ordinary
         subtraction and does not cover perturbing into dead tails. *)
      let s =
        let ps = Schedule.periods g.Recurrence.schedule in
        let n = Array.length ps in
        if n >= 2 && ps.(n - 1) <= c then
          Schedule.of_periods (Array.sub ps 0 (n - 1))
        else g.Recurrence.schedule
      in
      Schedule.num_periods s < 2
      ||
      let m = Perturb.perturbation_margin ~min_period:c lf ~c s in
      m.Perturb.margin >= -1e-7)

let prop_shift_none_only_on_collapse =
  QCheck.Test.make ~name:"shift returns None exactly when period collapses"
    ~count:200
    QCheck.(pair (float_range 0.1 5.0) (float_range (-6.0) 6.0))
    (fun (t, delta) ->
      let s = Schedule.of_list [ t; 1.0 ] in
      let result = Perturb.shift s ~k:0 ~delta in
      if t +. delta > 0.0 then result <> None else result = None)

let () =
  Alcotest.run "perturb"
    [
      ( "operators",
        [
          Alcotest.test_case "shift one period" `Quick
            test_shift_changes_one_period;
          Alcotest.test_case "shift rejects collapse" `Quick
            test_shift_rejects_nonpositive_result;
          Alcotest.test_case "shift out of range" `Quick test_shift_out_of_range;
          Alcotest.test_case "perturb preserves duration" `Quick
            test_perturb_preserves_duration;
          Alcotest.test_case "perturb rejects collapse" `Quick
            test_perturb_rejects_collapse;
          Alcotest.test_case "perturb out of range" `Quick
            test_perturb_out_of_range;
          QCheck_alcotest.to_alcotest prop_shift_none_only_on_collapse;
        ] );
      ( "thm-5.1",
        [
          Alcotest.test_case "recurrence beats perturbations" `Quick
            test_recurrence_schedule_beats_perturbations;
          Alcotest.test_case "geo-inc guideline margin" `Quick
            test_geo_inc_guideline_beats_perturbations;
          Alcotest.test_case "bad schedule improvable" `Quick
            test_bad_schedule_detected_by_perturbation;
          Alcotest.test_case "optimal beats shifts (Thm 3.1)" `Quick
            test_optimal_schedule_beats_shifts;
          Alcotest.test_case "needs two periods" `Quick
            test_margin_requires_two_periods;
          QCheck_alcotest.to_alcotest
            prop_thm51_recurrence_schedules_locally_optimal;
        ] );
    ]
