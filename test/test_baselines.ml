let lf = Families.uniform ~lifespan:100.0
let c = 1.0

let test_fixed_chunk_structure () =
  let b = Baselines.fixed_chunk lf ~c ~chunk:10.0 in
  let ps = Schedule.periods b.Baselines.schedule in
  Alcotest.(check int) "ten chunks" 10 (Array.length ps);
  Array.iter (fun t -> Alcotest.(check (float 0.0)) "chunk" 10.0 t) ps

let test_fixed_chunk_at_least_one () =
  let b = Baselines.fixed_chunk lf ~c ~chunk:500.0 in
  Alcotest.(check int) "one oversized chunk" 1
    (Schedule.num_periods b.Baselines.schedule)

let test_fixed_chunk_validation () =
  match Baselines.fixed_chunk lf ~c ~chunk:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "chunk = 0 accepted"

let test_best_fixed_chunk_dominates_fixed () =
  let best = Baselines.best_fixed_chunk lf ~c in
  List.iter
    (fun chunk ->
      let b = Baselines.fixed_chunk lf ~c ~chunk in
      Alcotest.(check bool)
        (Printf.sprintf "beats chunk %g" chunk)
        true
        (best.Baselines.expected_work >= b.Baselines.expected_work -. 1e-9))
    [ 2.0; 5.0; 10.0; 14.0; 20.0; 50.0 ]

let test_equal_split_structure () =
  let b = Baselines.equal_split lf ~c ~m:4 in
  let ps = Schedule.periods b.Baselines.schedule in
  Alcotest.(check int) "four periods" 4 (Array.length ps);
  Array.iter (fun t -> Alcotest.(check (float 1e-9)) "quarter" 25.0 t) ps

let test_equal_split_validation () =
  match Baselines.equal_split lf ~c ~m:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "m = 0 accepted"

let test_single_period () =
  let b = Baselines.single_period lf ~c in
  Alcotest.(check int) "one period" 1 (Schedule.num_periods b.Baselines.schedule);
  (* Spanning the whole uniform lifespan means p(L) = 0: zero E. *)
  Alcotest.(check (float 1e-12)) "zero expected work" 0.0
    b.Baselines.expected_work

let test_doubling_structure () =
  let b = Baselines.doubling lf ~c ~first:10.0 in
  let ps = Schedule.periods b.Baselines.schedule in
  Alcotest.(check (float 0.0)) "first" 10.0 ps.(0);
  Alcotest.(check (float 0.0)) "second" 20.0 ps.(1);
  Alcotest.(check (float 0.0)) "third" 40.0 ps.(2)

let test_doubling_validation () =
  match Baselines.doubling lf ~c ~first:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative first accepted"

let test_all_policies_evaluated () =
  let all = Baselines.all lf ~c in
  Alcotest.(check int) "eight policies" 8 (List.length all);
  List.iter
    (fun b ->
      Alcotest.(check (float 1e-9))
        (b.Baselines.name ^ " E consistent")
        b.Baselines.expected_work
        (Schedule.expected_work ~c lf b.Baselines.schedule))
    all

let test_guideline_dominates_all_baselines () =
  (* The headline of E9: the guideline beats every naive policy. *)
  List.iter
    (fun (scenario, lf) ->
      let g = Guideline.plan lf ~c in
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: guideline >= %s" scenario b.Baselines.name)
            true
            (g.Guideline.expected_work >= b.Baselines.expected_work -. 1e-6))
        (Baselines.all lf ~c))
    (Families.all_paper_scenarios ~c)

let prop_best_fixed_chunk_is_stationary =
  QCheck.Test.make ~name:"best fixed chunk beats nearby chunks" ~count:10
    QCheck.(float_range 30.0 150.0)
    (fun l ->
      let lf = Families.uniform ~lifespan:l in
      let best = Baselines.best_fixed_chunk lf ~c in
      let chunk_of_name s = Schedule.period s.Baselines.schedule 0 in
      let ch = chunk_of_name best in
      List.for_all
        (fun d ->
          let chunk = ch *. (1.0 +. d) in
          chunk <= c
          || best.Baselines.expected_work
             >= (Baselines.fixed_chunk lf ~c ~chunk).Baselines.expected_work
                -. 1e-6)
        [ -0.2; -0.05; 0.05; 0.2 ])

let () =
  Alcotest.run "baselines"
    [
      ( "baselines",
        [
          Alcotest.test_case "fixed chunk structure" `Quick
            test_fixed_chunk_structure;
          Alcotest.test_case "fixed chunk oversized" `Quick
            test_fixed_chunk_at_least_one;
          Alcotest.test_case "fixed chunk validation" `Quick
            test_fixed_chunk_validation;
          Alcotest.test_case "best fixed chunk dominates" `Quick
            test_best_fixed_chunk_dominates_fixed;
          Alcotest.test_case "equal split structure" `Quick
            test_equal_split_structure;
          Alcotest.test_case "equal split validation" `Quick
            test_equal_split_validation;
          Alcotest.test_case "single period" `Quick test_single_period;
          Alcotest.test_case "doubling structure" `Quick test_doubling_structure;
          Alcotest.test_case "doubling validation" `Quick
            test_doubling_validation;
          Alcotest.test_case "all policies" `Quick test_all_policies_evaluated;
          Alcotest.test_case "guideline dominates (E9)" `Quick
            test_guideline_dominates_all_baselines;
          QCheck_alcotest.to_alcotest prop_best_fixed_chunk_is_stationary;
        ] );
    ]
