let test_draws_within_support () =
  let lf = Families.uniform ~lifespan:50.0 in
  let s = Reclaim.create lf in
  let g = Prng.create ~seed:1L in
  for _ = 1 to 5000 do
    let t = Reclaim.draw s g in
    if t < 0.0 || t > 50.0 then Alcotest.failf "draw %g outside [0, 50]" t
  done

let test_uniform_draw_distribution () =
  (* Uniform life function => reclaim time uniform on [0, L]. *)
  let l = 10.0 in
  let lf = Families.uniform ~lifespan:l in
  let s = Reclaim.create lf in
  let g = Prng.create ~seed:2L in
  let n = 100_000 in
  let draws = Array.init n (fun _ -> Reclaim.draw s g) in
  Alcotest.(check (float 0.05)) "mean L/2" 5.0 (Stats.mean draws);
  Alcotest.(check (float 0.05)) "median L/2" 5.0 (Stats.quantile draws ~q:0.5);
  Alcotest.(check (float 0.05)) "q25" 2.5 (Stats.quantile draws ~q:0.25)

let test_exponential_draw_distribution () =
  let rate = 0.5 in
  let lf = Families.exponential ~rate in
  let s = Reclaim.create lf in
  let g = Prng.create ~seed:3L in
  let n = 100_000 in
  let draws = Array.init n (fun _ -> Reclaim.draw s g) in
  Alcotest.(check (float 0.05)) "mean 1/rate" 2.0 (Stats.mean draws);
  Alcotest.(check (float 0.05)) "median ln2/rate" (log 2.0 /. rate)
    (Stats.quantile draws ~q:0.5)

let test_survival_identity () =
  (* Empirical Pr(T > t) must match p(t) at several probes. *)
  let lf = Families.geometric_increasing ~lifespan:20.0 in
  let s = Reclaim.create lf in
  let g = Prng.create ~seed:4L in
  let n = 200_000 in
  let draws = Array.init n (fun _ -> Reclaim.draw s g) in
  List.iter
    (fun t ->
      let surv =
        float_of_int (Array.fold_left (fun acc d -> if d > t then acc + 1 else acc) 0 draws)
        /. float_of_int n
      in
      Alcotest.(check (float 0.01))
        (Printf.sprintf "p(%g)" t)
        (Life_function.eval lf t) surv)
    [ 2.0; 8.0; 15.0; 19.0 ]

let test_draw_exact_agrees_with_tabulated () =
  (* Same underlying uniform u gives nearly identical inversions. *)
  let lf = Families.polynomial ~d:2 ~lifespan:30.0 in
  let sampler = Reclaim.create lf in
  let n = 2000 in
  let g1 = Prng.create ~seed:5L in
  let g2 = Prng.create ~seed:5L in
  for _ = 1 to n do
    let a = Reclaim.draw sampler g1 in
    let b = Reclaim.draw_exact lf g2 in
    if Float.abs (a -. b) > 0.01 then
      Alcotest.failf "tabulated %g vs exact %g" a b
  done

let test_mean_of_draws_matches_mean_lifetime () =
  let lf = Families.uniform ~lifespan:40.0 in
  let s = Reclaim.create lf in
  let g = Prng.create ~seed:6L in
  let m = Reclaim.mean_of_draws s g ~n:100_000 in
  Alcotest.(check (float 0.2)) "mean lifetime" (Life_function.mean_lifetime lf) m

let test_mean_of_draws_validation () =
  let s = Reclaim.create (Families.uniform ~lifespan:1.0) in
  let g = Prng.create ~seed:7L in
  match Reclaim.mean_of_draws s g ~n:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n = 0 accepted"

let test_determinism () =
  let lf = Families.exponential ~rate:1.0 in
  let s = Reclaim.create lf in
  let draws seed =
    let g = Prng.create ~seed in
    Array.init 100 (fun _ -> Reclaim.draw s g)
  in
  Alcotest.(check bool) "same seed same draws" true (draws 9L = draws 9L)

let prop_draws_match_quantiles =
  QCheck.Test.make ~name:"empirical quantiles track quantile_time" ~count:10
    QCheck.(float_range 10.0 80.0)
    (fun l ->
      let lf = Families.uniform ~lifespan:l in
      let s = Reclaim.create lf in
      let g = Prng.create ~seed:11L in
      let draws = Array.init 20_000 (fun _ -> Reclaim.draw s g) in
      let q30_expected = Life_function.quantile_time lf ~q:0.7 in
      Float.abs (Stats.quantile draws ~q:0.3 -. q30_expected) /. l < 0.02)

let () =
  Alcotest.run "reclaim"
    [
      ( "reclaim",
        [
          Alcotest.test_case "draws within support" `Quick
            test_draws_within_support;
          Alcotest.test_case "uniform distribution" `Quick
            test_uniform_draw_distribution;
          Alcotest.test_case "exponential distribution" `Quick
            test_exponential_draw_distribution;
          Alcotest.test_case "survival identity" `Quick test_survival_identity;
          Alcotest.test_case "tabulated = exact" `Quick
            test_draw_exact_agrees_with_tabulated;
          Alcotest.test_case "mean of draws" `Quick
            test_mean_of_draws_matches_mean_lifetime;
          Alcotest.test_case "mean_of_draws validation" `Quick
            test_mean_of_draws_validation;
          Alcotest.test_case "determinism" `Quick test_determinism;
          QCheck_alcotest.to_alcotest prop_draws_match_quantiles;
        ] );
    ]
