let c = 1.0

let test_work_step_function () =
  let s = Schedule.of_list [ 4.0; 3.0 ] in
  Alcotest.(check (float 1e-12)) "before first" 0.0
    (Worst_case.work_if_killed_at s ~c 3.9);
  Alcotest.(check (float 1e-12)) "at first" 3.0
    (Worst_case.work_if_killed_at s ~c 4.0);
  Alcotest.(check (float 1e-12)) "all done" 5.0
    (Worst_case.work_if_killed_at s ~c 7.0)

let test_work_matches_episode () =
  (* W_S agrees with the simulator's accounting at every probe. *)
  let s = Schedule.of_list [ 5.0; 4.0; 3.0; 2.0 ] in
  List.iter
    (fun t ->
      Alcotest.(check (float 1e-12)) "consistent with Episode"
        (Episode.work_if_reclaimed_at s ~c t)
        (Worst_case.work_if_killed_at s ~c t))
    [ 0.0; 4.9; 5.0; 8.9; 9.0; 12.0; 13.9; 14.0; 99.0 ]

let test_ratio_hand_computed () =
  (* S = [2; 2], grace 2, horizon 6:
     t in [2, 4): W = 1, worst at t->4^-: 1/3.
     t in [4, 6]: W = 2, worst at 6: 2/5.
     critical points: grace 2 -> 1/1; before T_1=4 -> 1/3; horizon -> 2/5.
     infimum = 1/3. *)
  let s = Schedule.of_list [ 2.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "hand ratio" (1.0 /. 3.0)
    (Worst_case.competitive_ratio s ~c ~grace:2.0 ~horizon:6.0)

let test_ratio_zero_when_nothing_by_grace () =
  let s = Schedule.of_list [ 50.0 ] in
  Alcotest.(check (float 0.0)) "zero" 0.0
    (Worst_case.competitive_ratio s ~c ~grace:5.0 ~horizon:100.0)

let test_ratio_validation () =
  let s = Schedule.of_list [ 2.0 ] in
  (match Worst_case.competitive_ratio s ~c ~grace:0.5 ~horizon:10.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "grace <= c accepted");
  match Worst_case.competitive_ratio s ~c ~grace:5.0 ~horizon:4.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "horizon < grace accepted"

let test_geometric_schedule_structure () =
  let s = Worst_case.geometric_schedule ~horizon:100.0 ~t0:4.0 ~factor:2.0 in
  let ps = Schedule.periods s in
  Alcotest.(check (float 0.0)) "first" 4.0 ps.(0);
  Alcotest.(check (float 0.0)) "second" 8.0 ps.(1);
  Alcotest.(check (float 1e-9)) "covers horizon" 100.0
    (Schedule.total_duration s)

let test_geometric_validation () =
  match Worst_case.geometric_schedule ~horizon:10.0 ~t0:0.0 ~factor:2.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "t0 = 0 accepted"

let test_plan_achieves_positive_ratio () =
  let w = Worst_case.plan ~c ~horizon:100.0 () in
  Alcotest.(check bool) "ratio substantial" true (w.Worst_case.ratio > 0.4);
  Alcotest.(check bool) "ratio < 1" true (w.Worst_case.ratio < 1.0)

let test_plan_ratio_consistent () =
  let w = Worst_case.plan ~c ~horizon:60.0 () in
  Alcotest.(check (float 1e-9)) "reported = evaluated" w.Worst_case.ratio
    (Worst_case.competitive_ratio w.Worst_case.schedule ~c
       ~grace:w.Worst_case.grace ~horizon:w.Worst_case.horizon)

let test_plan_beats_guideline_worst_case () =
  (* The expected-work guideline has no adversarial guarantee; its ratio
     must be below the dedicated plan's. *)
  let horizon = 100.0 in
  let w = Worst_case.plan ~c ~horizon () in
  let g = Guideline.plan (Families.uniform ~lifespan:horizon) ~c in
  let rg =
    Worst_case.competitive_ratio g.Guideline.schedule ~c
      ~grace:w.Worst_case.grace ~horizon
  in
  Alcotest.(check bool)
    (Printf.sprintf "dedicated %.3f > guideline %.3f" w.Worst_case.ratio rg)
    true
    (w.Worst_case.ratio > rg)

let test_plan_pays_in_expectation () =
  (* ...and conversely the guarantee costs expected work under uniform p. *)
  let horizon = 100.0 in
  let lf = Families.uniform ~lifespan:horizon in
  let w = Worst_case.plan ~c ~horizon () in
  let g = Guideline.plan lf ~c in
  Alcotest.(check bool) "guideline E higher" true
    (g.Guideline.expected_work
    > Schedule.expected_work ~c lf w.Worst_case.schedule)

let test_plan_validation () =
  (match Worst_case.plan ~c ~horizon:4.0 ~grace:5.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "horizon <= grace accepted");
  match Worst_case.plan ~c ~horizon:10.0 ~grace:0.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "grace <= c accepted"

let prop_sampled_infimum_matches_exact =
  QCheck.Test.make
    ~name:"exact critical-point ratio equals dense sampling" ~count:60
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 12) (float_range 0.5 10.0))
        (float_range 10.0 60.0))
    (fun (ts, horizon) ->
      let s = Schedule.of_periods ts in
      let grace = 3.0 in
      let exact = Worst_case.competitive_ratio s ~c ~grace ~horizon in
      let sampled = ref infinity in
      for i = 0 to 4000 do
        let t = grace +. (float_of_int i /. 4000.0 *. (horizon -. grace)) in
        sampled :=
          Float.min !sampled (Worst_case.work_if_killed_at s ~c t /. (t -. c))
      done;
      (* Dense sampling can only miss the infimum from above by a grid gap. *)
      exact <= !sampled +. 1e-9 && exact >= !sampled -. 0.05)

let prop_ratio_monotone_in_horizon =
  QCheck.Test.make ~name:"ratio weakly decreases as the horizon grows"
    ~count:60
    QCheck.(array_of_size Gen.(int_range 1 10) (float_range 0.5 8.0))
    (fun ts ->
      let s = Schedule.of_periods ts in
      let grace = 3.0 in
      let r1 = Worst_case.competitive_ratio s ~c ~grace ~horizon:20.0 in
      let r2 = Worst_case.competitive_ratio s ~c ~grace ~horizon:40.0 in
      r2 <= r1 +. 1e-12)

let () =
  Alcotest.run "worst_case"
    [
      ( "worst_case",
        [
          Alcotest.test_case "work step function" `Quick
            test_work_step_function;
          Alcotest.test_case "work matches episode" `Quick
            test_work_matches_episode;
          Alcotest.test_case "hand-computed ratio" `Quick
            test_ratio_hand_computed;
          Alcotest.test_case "zero without grace completion" `Quick
            test_ratio_zero_when_nothing_by_grace;
          Alcotest.test_case "ratio validation" `Quick test_ratio_validation;
          Alcotest.test_case "geometric structure" `Quick
            test_geometric_schedule_structure;
          Alcotest.test_case "geometric validation" `Quick
            test_geometric_validation;
          Alcotest.test_case "plan positive ratio" `Quick
            test_plan_achieves_positive_ratio;
          Alcotest.test_case "plan ratio consistent" `Quick
            test_plan_ratio_consistent;
          Alcotest.test_case "plan beats guideline worst case" `Quick
            test_plan_beats_guideline_worst_case;
          Alcotest.test_case "guarantee costs expectation" `Quick
            test_plan_pays_in_expectation;
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          QCheck_alcotest.to_alcotest prop_sampled_infimum_matches_exact;
          QCheck_alcotest.to_alcotest prop_ratio_monotone_in_horizon;
        ] );
    ]
