let test_greedy_first_period_exponential () =
  (* argmax (t-c) a^{-t} = c + 1/ln a, independent of elapsed time. *)
  let a = exp 0.1 and c = 1.0 in
  let lf = Families.geometric_decreasing ~a in
  let expected = c +. (1.0 /. log a) in
  (match Greedy.first_period lf ~c ~elapsed:0.0 with
  | Some t -> Alcotest.(check (float 1e-3)) "first period" expected t
  | None -> Alcotest.fail "expected a period");
  match Greedy.first_period lf ~c ~elapsed:13.0 with
  | Some t -> Alcotest.(check (float 1e-3)) "memoryless repeat" expected t
  | None -> Alcotest.fail "expected a period"

let test_greedy_first_period_uniform () =
  (* argmax (t-c)(1 - t/L) = (L+c)/2. *)
  let lf = Families.uniform ~lifespan:100.0 in
  match Greedy.first_period lf ~c:1.0 ~elapsed:0.0 with
  | Some t -> Alcotest.(check (float 1e-4)) "vertex" 50.5 t
  | None -> Alcotest.fail "expected a period"

let test_greedy_none_when_no_room () =
  let lf = Families.uniform ~lifespan:10.0 in
  Alcotest.(check bool) "no period" true
    (Greedy.first_period lf ~c:1.0 ~elapsed:9.5 = None)

let test_greedy_plan_uniform_suboptimal () =
  (* §6: greedy is NOT optimal for the uniform scenario. *)
  let c = 1.0 and l = 100.0 in
  let lf = Families.uniform ~lifespan:l in
  let greedy = Greedy.plan lf ~c in
  let exact = Exact.uniform ~c ~lifespan:l in
  Alcotest.(check bool) "strictly below optimal" true
    (greedy.Greedy.expected_work < exact.Exact.expected_work -. 1e-6);
  Alcotest.(check bool) "but still positive" true
    (greedy.Greedy.expected_work > 0.0)

let test_greedy_geo_dec_asymptotically_optimal () =
  (* §6 claims greedy is optimal for geometric-decreasing; in the
     continuous model this holds only asymptotically as c·ln a grows. We
     reproduce the ratio improving toward 1. *)
  let ratio a c =
    let lf = Families.geometric_decreasing ~a in
    let greedy = Greedy.plan lf ~c in
    let exact = Exact.geometric_decreasing ~c ~a in
    greedy.Greedy.expected_work /. exact.Exact.expected_work
  in
  let low_risk = ratio (exp 0.05) 1.0 in
  let high_risk = ratio (exp 2.0) 2.0 in
  Alcotest.(check bool) "ratio improves with risk" true (high_risk > low_risk);
  Alcotest.(check bool) "near-optimal at high risk" true (high_risk > 0.99);
  Alcotest.(check bool) "visibly suboptimal at low risk" true (low_risk < 0.9)

let test_greedy_plan_consistent_e () =
  let lf = Families.geometric_increasing ~lifespan:30.0 in
  let g = Greedy.plan lf ~c:1.0 in
  Alcotest.(check (float 1e-9)) "E consistent" g.Greedy.expected_work
    (Schedule.expected_work ~c:1.0 lf g.Greedy.schedule)

let test_greedy_validation () =
  let lf = Families.uniform ~lifespan:10.0 in
  (match Greedy.plan lf ~c:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c = 0 accepted");
  match Greedy.plan lf ~c:11.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c >= horizon accepted"

let test_greedy_max_periods () =
  let lf = Families.geometric_decreasing ~a:(exp 0.001) in
  let g = Greedy.plan ~max_periods:4 lf ~c:0.1 in
  Alcotest.(check bool) "at most 4 periods" true
    (Schedule.num_periods g.Greedy.schedule <= 4)

let prop_greedy_never_beats_optimizer =
  QCheck.Test.make ~name:"greedy never beats the optimum" ~count:6
    QCheck.(pair (float_range 0.5 2.0) (float_range 25.0 80.0))
    (fun (c, l) ->
      let lf = Families.uniform ~lifespan:l in
      let g = Greedy.plan lf ~c in
      let o = Optimizer.optimal_schedule lf ~c in
      g.Greedy.expected_work <= o.Optimizer.expected_work +. 1e-6)

let prop_greedy_periods_all_productive =
  QCheck.Test.make ~name:"greedy periods exceed c" ~count:30
    QCheck.(pair (float_range 0.3 2.0) (float_range 20.0 100.0))
    (fun (c, l) ->
      let lf = Families.uniform ~lifespan:l in
      let g = Greedy.plan lf ~c in
      Array.for_all (fun t -> t > c) (Schedule.periods g.Greedy.schedule))

let () =
  Alcotest.run "greedy"
    [
      ( "greedy",
        [
          Alcotest.test_case "first period exponential" `Quick
            test_greedy_first_period_exponential;
          Alcotest.test_case "first period uniform" `Quick
            test_greedy_first_period_uniform;
          Alcotest.test_case "none when no room" `Quick
            test_greedy_none_when_no_room;
          Alcotest.test_case "suboptimal for uniform (§6)" `Quick
            test_greedy_plan_uniform_suboptimal;
          Alcotest.test_case "geo-dec asymptotics (§6)" `Quick
            test_greedy_geo_dec_asymptotically_optimal;
          Alcotest.test_case "consistent E" `Quick test_greedy_plan_consistent_e;
          Alcotest.test_case "validation" `Quick test_greedy_validation;
          Alcotest.test_case "max periods" `Quick test_greedy_max_periods;
          QCheck_alcotest.to_alcotest prop_greedy_never_beats_optimizer;
          QCheck_alcotest.to_alcotest prop_greedy_periods_all_productive;
        ] );
    ]
