(* The streaming telemetry pipeline: Obs_stream's codec and ordering
   machine (pure, over deterministic readers), the truncation-marker
   contract with Obs_query.load, Obs_remote's drop accounting and
   reconnect behaviour against real loopback sockets, the Obs_collect
   alert state machine, and one in-process end-to-end run proving a
   collector-ingested trace is diff-identical to the locally written
   one. *)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* A reader over a fixed string yielding at most [chunk] bytes per call
   — the socket partial-read case, made deterministic. *)
let string_reader ?(chunk = max_int) s =
  let pos = ref 0 in
  fun buf off len ->
    let n = Stdlib.min (Stdlib.min len chunk) (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n

let temp_sock () =
  let p = Filename.temp_file "cs_stream" ".sock" in
  Sys.remove p;
  p

let meta ?(seed = 7L) () =
  Obs.Meta.make ~git_sha:"deadbeef" ~seed ~jobs:1 ~scenario:"test stream" ()

let ev_start = Obs_event.Run_started { time = 0.0; source = "test"; seed = None }

let ev_period i =
  Obs_event.Period_completed
    {
      time = float_of_int i;
      ws = 0;
      ep = i;
      period = 2.0;
      banked = 1.5;
      overhead = 0.5;
    }

let ev_finish = Obs_event.Run_finished { time = 99.0 }

let frame_eq : Obs_stream.frame Alcotest.testable =
  Alcotest.testable
    (fun ppf f -> Format.fprintf ppf "%s" (Jsonx.to_string (Obs_stream.frame_to_json f)))
    ( = )

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let test_frame_roundtrip () =
  let frames =
    [
      Obs_stream.Hello (meta ());
      Obs_stream.Event { seq = 1; event = ev_start };
      Obs_stream.Event { seq = 2; event = ev_period 1 };
      Obs_stream.Heartbeat { seq = 2; dropped = 3 };
      Obs_stream.Bye { seq = 2; dropped = 3 };
    ]
  in
  (* Whole stream, one byte per read: frames must reassemble across
     arbitrary partial reads, and the next frame must start exactly
     where the previous payload ended. *)
  let wire = String.concat "" (List.map Obs_stream.encode frames) in
  let read = string_reader ~chunk:1 wire in
  List.iter
    (fun expect ->
      match Obs_stream.read_frame read with
      | Ok got -> Alcotest.check frame_eq "frame round trip" expect got
      | Error e ->
          Alcotest.failf "rejected own encoding: %a" Obs_stream.pp_read_error e)
    frames;
  match Obs_stream.read_frame read with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "expected clean EOF after the last frame"

let test_frame_errors () =
  (* Clean EOF at a frame boundary vs truncation inside one. *)
  (match Obs_stream.read_frame (string_reader "") with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "empty stream should be `Eof");
  let whole = Obs_stream.encode (Obs_stream.Heartbeat { seq = 1; dropped = 0 }) in
  (match
     Obs_stream.read_frame
       (string_reader (String.sub whole 0 (String.length whole - 2)))
   with
  | Error (`Malformed _) -> ()
  | _ -> Alcotest.fail "mid-frame EOF should be `Malformed");
  (match Obs_stream.read_frame (string_reader (String.sub whole 0 2)) with
  | Error (`Malformed _) -> ()
  | _ -> Alcotest.fail "truncated length prefix should be `Malformed");
  (* Oversized length prefix: rejected from the header alone. *)
  let big = Bytes.create 4 in
  Bytes.set_int32_be big 0 (Int32.of_int (Obs_stream.max_frame_bytes + 1));
  (match Obs_stream.read_frame (string_reader (Bytes.to_string big)) with
  | Error (`Too_large n) ->
      Alcotest.(check int) "cap carries the announced length"
        (Obs_stream.max_frame_bytes + 1)
        n
  | _ -> Alcotest.fail "oversized frame should be `Too_large");
  (* A well-framed payload that is not a frame. *)
  let garbage = "{\"v\":1,\"type\":\"nope\"}" in
  let b = Bytes.create (4 + String.length garbage) in
  Bytes.set_int32_be b 0 (Int32.of_int (String.length garbage));
  Bytes.blit_string garbage 0 b 4 (String.length garbage);
  match Obs_stream.read_frame (string_reader (Bytes.to_string b)) with
  | Error (`Malformed msg) ->
      Alcotest.(check bool) "names the unknown type" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "unknown frame type should be `Malformed"

(* ------------------------------------------------------------------ *)
(* Ordering machine                                                    *)

let reject = function
  | Obs_stream.Reject _ -> ()
  | _ -> Alcotest.fail "expected a rejection"

let accept = function
  | Obs_stream.Reject msg -> Alcotest.failf "unexpected rejection: %s" msg
  | _ -> ()

let test_ingest_headerless () =
  (* Every non-HELLO frame is refused until provenance arrives. *)
  let i = Obs_stream.ingest_create () in
  reject (Obs_stream.ingest i (Obs_stream.Event { seq = 1; event = ev_start }));
  reject (Obs_stream.ingest i (Obs_stream.Heartbeat { seq = 0; dropped = 0 }));
  reject (Obs_stream.ingest i (Obs_stream.Bye { seq = 0; dropped = 0 }));
  Alcotest.(check int) "rejected frames ingest nothing" 0
    (Obs_stream.ingest_events i);
  accept (Obs_stream.ingest i (Obs_stream.Hello (meta ())));
  accept (Obs_stream.ingest i (Obs_stream.Event { seq = 1; event = ev_start }))

let test_ingest_seq_discipline () =
  let i = Obs_stream.ingest_create () in
  accept (Obs_stream.ingest i (Obs_stream.Hello (meta ())));
  accept (Obs_stream.ingest i (Obs_stream.Event { seq = 1; event = ev_start }));
  accept
    (Obs_stream.ingest i (Obs_stream.Event { seq = 2; event = ev_period 1 }));
  (* Duplicate, out-of-order, and gapped sequence numbers are refused
     and do not advance the stream. *)
  reject
    (Obs_stream.ingest i (Obs_stream.Event { seq = 2; event = ev_period 1 }));
  reject
    (Obs_stream.ingest i (Obs_stream.Event { seq = 1; event = ev_start }));
  reject
    (Obs_stream.ingest i (Obs_stream.Event { seq = 4; event = ev_period 2 }));
  Alcotest.(check int) "two events accepted" 2 (Obs_stream.ingest_events i);
  accept
    (Obs_stream.ingest i (Obs_stream.Event { seq = 3; event = ev_period 2 }));
  (* Heartbeats must agree with the stream position. *)
  reject (Obs_stream.ingest i (Obs_stream.Heartbeat { seq = 7; dropped = 0 }));
  accept (Obs_stream.ingest i (Obs_stream.Heartbeat { seq = 3; dropped = 5 }));
  Alcotest.(check int) "heartbeat carries the drop counter" 5
    (Obs_stream.ingest_dropped i);
  accept (Obs_stream.ingest i (Obs_stream.Bye { seq = 3; dropped = 5 }));
  Alcotest.(check bool) "closed after BYE" true (Obs_stream.ingest_closed i);
  reject (Obs_stream.ingest i (Obs_stream.Event { seq = 4; event = ev_finish }))

let test_ingest_hello_rules () =
  let i = Obs_stream.ingest_create () in
  let m = meta () in
  accept (Obs_stream.ingest i (Obs_stream.Hello m));
  accept (Obs_stream.ingest i (Obs_stream.Event { seq = 1; event = ev_start }));
  (* A reconnecting producer re-announces identical provenance. *)
  accept (Obs_stream.ingest i (Obs_stream.Hello m));
  (* ... but cannot switch runs mid-stream. *)
  reject (Obs_stream.ingest i (Obs_stream.Hello (meta ~seed:8L ())));
  (* A first event above 1 is accepted (a lost prefix) and reported. *)
  let j = Obs_stream.ingest_create () in
  accept (Obs_stream.ingest j (Obs_stream.Hello m));
  accept
    (Obs_stream.ingest j (Obs_stream.Event { seq = 41; event = ev_start }));
  Alcotest.(check (option int)) "lost prefix visible" (Some 41)
    (Obs_stream.ingest_first_seq j);
  reject
    (Obs_stream.ingest j (Obs_stream.Event { seq = 41; event = ev_start }))

(* ------------------------------------------------------------------ *)
(* Truncation marker and Obs_query.load                                *)

let write_lines path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines)

let test_truncation_marker () =
  let j = Obs_stream.truncation_marker ~events:17 in
  Alcotest.(check bool) "self-identifies" true (Obs_stream.is_truncation_json j);
  Alcotest.(check int) "event count round trips" 17
    (ok (Obs_stream.truncation_of_json j));
  Alcotest.(check bool) "an event is not a marker" false
    (Obs_stream.is_truncation_json (Obs_event.to_json ev_start))

let test_load_accepts_marker () =
  let path = Filename.temp_file "cs_stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = meta () in
      let lines =
        [
          Jsonx.to_string (Obs_meta.to_json m);
          Jsonx.to_string (Obs_event.to_json ev_start);
          Jsonx.to_string (Obs_event.to_json (ev_period 1));
          Jsonx.to_string (Obs_stream.truncation_marker ~events:2);
        ]
      in
      write_lines path lines;
      let t = ok (Obs_query.load path) in
      Alcotest.(check int) "events load" 2 (List.length t.Obs_query.events);
      Alcotest.(check (option int)) "marker surfaced" (Some 2)
        t.Obs_query.truncated;
      (* A complete trace reports no truncation. *)
      write_lines path
        (List.filteri (fun i _ -> i < 3) lines);
      Alcotest.(check (option int)) "complete trace" None
        (ok (Obs_query.load path)).Obs_query.truncated;
      (* Events after the marker, or a second marker, are corruption. *)
      write_lines path
        (lines @ [ Jsonx.to_string (Obs_event.to_json ev_finish) ]);
      (match Obs_query.load path with
      | Error msg ->
          Alcotest.(check bool) "event after marker is an error" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "accepted an event after the marker");
      write_lines path
        (lines @ [ Jsonx.to_string (Obs_stream.truncation_marker ~events:2) ]);
      match Obs_query.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted a duplicate marker")

(* ------------------------------------------------------------------ *)
(* Obs_remote: drop accounting and reconnects                          *)

let test_remote_overflow_drops () =
  (* No collector at the address: the ring absorbs [capacity] events
     and every further emit is counted dropped, never blocked on. At
     close the bounded reconnect gives up and the queue drains into
     the drop counter too: nothing is silently lost. *)
  let addr = Obs_http.Unix_sock (temp_sock ()) in
  let r =
    Obs_remote.create ~capacity:4 ~max_backoff_s:0.05 ~addr ~meta:(meta ()) ()
  in
  let sink = Obs_remote.sink r in
  for i = 1 to 50 do
    Obs_sink.emit sink (ev_period i)
  done;
  Obs_remote.close r;
  let s = Obs_remote.stats r in
  Alcotest.(check int) "nothing delivered" 0 s.Obs_remote.sent;
  Alcotest.(check int) "every event accounted" 50 s.Obs_remote.dropped;
  Alcotest.(check int) "no connection made" 0 s.Obs_remote.hellos;
  (* Emitting after close is a drop, not a crash. *)
  Obs_sink.emit sink ev_finish;
  Alcotest.(check int) "post-close emit counted" 51
    (Obs_remote.stats r).Obs_remote.dropped;
  (* Close is idempotent. *)
  Obs_remote.close r

(* A minimal in-process collector endpoint: accept connections on
   [addr], read frames off each, and count what arrives. [kill_after]
   closes the nth connection after that many frames — the mid-stream
   crash the producer must survive by reconnecting. *)
type drain = {
  d_mu : Mutex.t;
  mutable d_hellos : int;
  mutable d_events : int;
  mutable d_byes : int;
  mutable d_conns : int;
}

let start_drain ?kill_after addr =
  let lfd, bound = ok (Obs_http.listen_on addr) in
  let d =
    { d_mu = Mutex.create (); d_hellos = 0; d_events = 0; d_byes = 0;
      d_conns = 0 }
  in
  let stop = Atomic.make false in
  let handle conn ~kill =
    let read buf pos len =
      try Unix.read conn buf pos len with Unix.Unix_error _ -> 0
    in
    let frames = ref 0 in
    let rec loop () =
      match Obs_stream.read_frame read with
      | Error _ -> ()
      | Ok f ->
          incr frames;
          Mutex.lock d.d_mu;
          (match f with
          | Obs_stream.Hello _ -> d.d_hellos <- d.d_hellos + 1
          | Obs_stream.Event _ -> d.d_events <- d.d_events + 1
          | Obs_stream.Bye _ -> d.d_byes <- d.d_byes + 1
          | Obs_stream.Heartbeat _ -> ());
          Mutex.unlock d.d_mu;
          (match kill with
          | Some n when !frames >= n -> () (* hang up mid-stream *)
          | _ -> loop ())
    in
    loop ();
    try Unix.close conn with Unix.Unix_error _ -> ()
  in
  let accept_thread =
    Thread.create
      (fun () ->
        let rec loop () =
          if not (Atomic.get stop) then
            match Unix.accept lfd with
            | exception Unix.Unix_error _ -> ()
            | conn, _ ->
                if Atomic.get stop then (
                  (try Unix.close conn with Unix.Unix_error _ -> ());
                  ())
                else begin
                  Mutex.lock d.d_mu;
                  d.d_conns <- d.d_conns + 1;
                  let kill =
                    match kill_after with
                    | Some (nth, frames) when d.d_conns = nth -> Some frames
                    | _ -> None
                  in
                  Mutex.unlock d.d_mu;
                  handle conn ~kill;
                  loop ()
                end
        in
        loop ())
      ()
  in
  let shutdown () =
    Atomic.set stop true;
    (* Unpark the accept with a throwaway connect. *)
    let domain, sockaddr = Obs_http.sockaddr_of bound in
    (match Unix.socket domain Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.connect fd sockaddr with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ()));
    Thread.join accept_thread;
    Obs_http.cleanup lfd bound
  in
  (d, bound, shutdown)

(* [Obs_remote.close] guarantees the bytes are written, not that the
   drain thread has read them yet. The BYE is the last frame of a
   segment, so once it is counted every earlier frame is too. *)
let await_byes d n =
  let deadline = 500 in
  let rec loop i =
    Mutex.lock d.d_mu;
    let byes = d.d_byes in
    Mutex.unlock d.d_mu;
    if byes < n && i < deadline then begin
      Thread.yield ();
      Unix.sleepf 0.01;
      loop (i + 1)
    end
  in
  loop 0

let test_remote_delivers_and_says_bye () =
  let d, bound, shutdown = start_drain (Obs_http.Unix_sock (temp_sock ())) in
  Fun.protect ~finally:shutdown (fun () ->
      let r = Obs_remote.create ~addr:bound ~meta:(meta ()) () in
      let sink = Obs_remote.sink r in
      for i = 1 to 200 do
        Obs_sink.emit sink (ev_period i)
      done;
      Obs_remote.close r;
      let s = Obs_remote.stats r in
      Alcotest.(check int) "all delivered" 200 s.Obs_remote.sent;
      Alcotest.(check int) "no drops" 0 s.Obs_remote.dropped;
      Alcotest.(check int) "one connection" 1 s.Obs_remote.hellos;
      await_byes d 1;
      Mutex.lock d.d_mu;
      let hellos, events, byes = (d.d_hellos, d.d_events, d.d_byes) in
      Mutex.unlock d.d_mu;
      Alcotest.(check int) "HELLO on the wire" 1 hellos;
      Alcotest.(check int) "events on the wire" 200 events;
      Alcotest.(check int) "BYE on the wire" 1 byes)

let test_remote_reconnects_with_fresh_hello () =
  (* The drain hangs up the first connection after 5 frames. The
     producer must notice the dead socket, count the lost event(s),
     reconnect, and open the second segment with a fresh HELLO. *)
  let d, bound, shutdown =
    start_drain ~kill_after:(1, 5) (Obs_http.Unix_sock (temp_sock ()))
  in
  Fun.protect ~finally:shutdown (fun () ->
      let r =
        Obs_remote.create ~max_backoff_s:0.05 ~addr:bound ~meta:(meta ()) ()
      in
      let sink = Obs_remote.sink r in
      for i = 1 to 300 do
        Obs_sink.emit sink (ev_period i)
      done;
      Obs_remote.close r;
      let s = Obs_remote.stats r in
      Alcotest.(check int) "reconnected with a fresh HELLO" 2
        s.Obs_remote.hellos;
      Alcotest.(check bool) "the break cost at least one event" true
        (s.Obs_remote.dropped >= 1);
      Alcotest.(check int) "every event accounted exactly once" 300
        (s.Obs_remote.sent + s.Obs_remote.dropped);
      await_byes d 1;
      Mutex.lock d.d_mu;
      let hellos = d.d_hellos and byes = d.d_byes in
      Mutex.unlock d.d_mu;
      Alcotest.(check int) "both HELLOs observed" 2 hellos;
      Alcotest.(check int) "clean BYE on the second segment" 1 byes)

(* ------------------------------------------------------------------ *)
(* Alert state machine                                                 *)

let test_alerts_edges () =
  let rules =
    [
      ok (Obs_health.parse_rule "warn probe.level <= 10");
      ok (Obs_health.parse_rule "critical absent.metric > 0");
    ]
  in
  let a = Obs_collect.Alerts.create rules in
  let reg = Obs_metrics.create () in
  let g = Obs_metrics.gauge reg "probe.level" in
  (* The absent selector is Missing, not Fail: no alert. *)
  Obs_metrics.set g 5.0;
  Alcotest.(check int) "healthy: no transitions" 0
    (List.length (Obs_collect.Alerts.observe a (Obs_metrics.snapshot reg)));
  Alcotest.(check bool) "nothing firing" false
    (Obs_collect.Alerts.any_firing a);
  (* Cross the threshold: exactly one firing edge, then silence while
     the violation persists. *)
  Obs_metrics.set g 25.0;
  (match Obs_collect.Alerts.observe a (Obs_metrics.snapshot reg) with
  | [ tr ] ->
      Alcotest.(check bool) "firing edge" true tr.Obs_collect.tr_firing;
      Alcotest.(check (option (float 1e-9))) "offending value" (Some 25.0)
        tr.Obs_collect.tr_value
  | l -> Alcotest.failf "expected one transition, got %d" (List.length l));
  Alcotest.(check bool) "now firing" true (Obs_collect.Alerts.any_firing a);
  Alcotest.(check int) "level holds: no repeat" 0
    (List.length (Obs_collect.Alerts.observe a (Obs_metrics.snapshot reg)));
  (* Recover: one resolved edge. *)
  Obs_metrics.set g 3.0;
  (match Obs_collect.Alerts.observe a (Obs_metrics.snapshot reg) with
  | [ tr ] ->
      Alcotest.(check bool) "resolved edge" false tr.Obs_collect.tr_firing
  | l -> Alcotest.failf "expected one transition, got %d" (List.length l));
  Alcotest.(check bool) "all clear" false (Obs_collect.Alerts.any_firing a)

(* ------------------------------------------------------------------ *)
(* End to end: collector run                                           *)

let with_temp_dir k =
  let path = Filename.temp_file "cs_stream" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm path) (fun () -> k path)

let events_for_run = ev_start :: List.map ev_period [ 1; 2; 3 ] @ [ ev_finish ]

let run_collector ?rules ?(producers = 1) ~out_dir () =
  let listen = Obs_http.Unix_sock (temp_sock ()) in
  let result = ref (Error "collector did not run") in
  let th =
    Thread.create
      (fun () ->
        result :=
          Obs_collect.run ?rules ~producers ~once:true ~out_dir ~listen ())
      ()
  in
  (* The producer connects with retries, so racing the bind is fine. *)
  (listen, th, result)

let test_collect_end_to_end () =
  with_temp_dir (fun dir ->
      let m = meta () in
      let listen, th, result = run_collector ~out_dir:dir () in
      let r = Obs_remote.create ~addr:listen ~meta:m () in
      let sink = Obs_remote.sink r in
      List.iter (Obs_sink.emit sink) events_for_run;
      Obs_remote.close r;
      Thread.join th;
      let summary = ok !result in
      (match summary.Obs_collect.streams with
      | [ ss ] ->
          Alcotest.(check int) "all events ingested" 5 ss.Obs_collect.ss_events;
          Alcotest.(check bool) "clean BYE" false ss.Obs_collect.ss_truncated;
          Alcotest.(check int) "no producer drops" 0 ss.Obs_collect.ss_dropped
      | l -> Alcotest.failf "expected one stream, got %d" (List.length l));
      Alcotest.(check int) "no rejected frames" 0 summary.Obs_collect.rejected;
      (* The collected file is a valid trace, provenance first, and
         diff-identical to the same events written locally. *)
      let collected =
        match (List.hd summary.Obs_collect.streams).Obs_collect.ss_path with
        | Some p -> p
        | None -> Alcotest.fail "stream has no output path"
      in
      let local = Filename.concat dir "local.jsonl" in
      Obs_sink.with_jsonl_file ~meta:m local (fun sink ->
          List.iter (Obs_sink.emit sink) events_for_run);
      let ct = ok (Obs_query.load collected) in
      let lt = ok (Obs_query.load local) in
      Alcotest.(check (option int)) "not truncated" None ct.Obs_query.truncated;
      (match ct.Obs_query.meta with
      | Some cm ->
          Alcotest.(check (option int64)) "provenance survives the hop"
            m.Obs_meta.seed cm.Obs_meta.seed
      | None -> Alcotest.fail "collected trace lost its header");
      match Obs_query.diff ct.Obs_query.events lt.Obs_query.events with
      | None -> ()
      | Some _ -> Alcotest.fail "streamed trace diverges from local trace")

let test_collect_truncated_stream () =
  with_temp_dir (fun dir ->
      let listen, th, result = run_collector ~out_dir:dir () in
      (* A producer that crashes: speak the protocol by hand and hang
         up without BYE. Retry the connect while the collector binds. *)
      let domain, sockaddr = Obs_http.sockaddr_of listen in
      let rec connect attempts =
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd sockaddr with
        | () -> fd
        | exception Unix.Unix_error _ when attempts > 0 ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Unix.sleepf 0.02;
            connect (attempts - 1)
      in
      let fd = connect 100 in
      let send frame =
        let s = Obs_stream.encode frame in
        ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s))
      in
      send (Obs_stream.Hello (meta ()));
      send (Obs_stream.Event { seq = 1; event = ev_start });
      send (Obs_stream.Event { seq = 2; event = ev_period 1 });
      Unix.close fd;
      Thread.join th;
      let summary = ok !result in
      let ss =
        match summary.Obs_collect.streams with
        | [ ss ] -> ss
        | l -> Alcotest.failf "expected one stream, got %d" (List.length l)
      in
      Alcotest.(check bool) "finalized as truncated" true
        ss.Obs_collect.ss_truncated;
      Alcotest.(check int) "events before the cut" 2 ss.Obs_collect.ss_events;
      let t =
        ok (Obs_query.load (Option.get ss.Obs_collect.ss_path))
      in
      Alcotest.(check (option int)) "marker in the stored trace" (Some 2)
        t.Obs_query.truncated)

let test_collect_rejects_headerless () =
  with_temp_dir (fun dir ->
      let listen, th, result = run_collector ~out_dir:dir () in
      let domain, sockaddr = Obs_http.sockaddr_of listen in
      let rec connect attempts =
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd sockaddr with
        | () -> fd
        | exception Unix.Unix_error _ when attempts > 0 ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Unix.sleepf 0.02;
            connect (attempts - 1)
      in
      (* Headerless stream: refused, no stream opened, collector keeps
         waiting for a real producer. *)
      let fd = connect 100 in
      let s = Obs_stream.encode (Obs_stream.Event { seq = 1; event = ev_start }) in
      ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s));
      Unix.close fd;
      (* Now a well-behaved producer completes the run. *)
      let r = Obs_remote.create ~addr:listen ~meta:(meta ()) () in
      List.iter (Obs_sink.emit (Obs_remote.sink r)) events_for_run;
      Obs_remote.close r;
      Thread.join th;
      let summary = ok !result in
      Alcotest.(check bool) "headerless frame rejected" true
        (summary.Obs_collect.rejected >= 1);
      Alcotest.(check int) "only the real stream counted" 1
        (List.length summary.Obs_collect.streams))

let () =
  Alcotest.run "stream"
    [
      ( "codec",
        [
          Alcotest.test_case "frame round trips over partial reads" `Quick
            test_frame_roundtrip;
          Alcotest.test_case "eof, cap and malformed frames" `Quick
            test_frame_errors;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "headerless streams refused" `Quick
            test_ingest_headerless;
          Alcotest.test_case "sequence discipline" `Quick
            test_ingest_seq_discipline;
          Alcotest.test_case "hello resume and conflict" `Quick
            test_ingest_hello_rules;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "marker round trip" `Quick test_truncation_marker;
          Alcotest.test_case "Obs_query.load accepts and reports" `Quick
            test_load_accepts_marker;
        ] );
      ( "remote",
        [
          Alcotest.test_case "ring overflow drop accounting" `Quick
            test_remote_overflow_drops;
          Alcotest.test_case "delivers all and says BYE" `Quick
            test_remote_delivers_and_says_bye;
          Alcotest.test_case "reconnects with a fresh HELLO" `Quick
            test_remote_reconnects_with_fresh_hello;
        ] );
      ( "alerts",
        [ Alcotest.test_case "firing and resolved edges" `Quick
            test_alerts_edges ] );
      ( "collect",
        [
          Alcotest.test_case "streamed trace equals local trace" `Quick
            test_collect_end_to_end;
          Alcotest.test_case "no BYE finalizes as truncated" `Quick
            test_collect_truncated_stream;
          Alcotest.test_case "headerless producer rejected" `Quick
            test_collect_rejects_headerless;
        ] );
    ]
