let check_x ?(eps = 1e-6) expected (p : Optimize.point) =
  Alcotest.(check (float eps)) "argmax/argmin" expected p.Optimize.x

let test_golden_max_parabola () =
  check_x 3.0
    (Optimize.golden_section_max
       (fun x -> -.((x -. 3.0) ** 2.0))
       ~lo:0.0 ~hi:10.0)

let test_golden_min_parabola () =
  check_x 3.0
    (Optimize.golden_section_min (fun x -> (x -. 3.0) ** 2.0) ~lo:0.0 ~hi:10.0)

let test_golden_edge_maximum () =
  (* Monotone increasing: max at right edge. *)
  let p = Optimize.golden_section_max (fun x -> x) ~lo:0.0 ~hi:5.0 in
  Alcotest.(check (float 1e-6)) "edge max" 5.0 p.Optimize.x

let test_brent_max_smooth () =
  (* max of x * exp(-x) at x = 1 *)
  check_x 1.0 (Optimize.brent_max (fun x -> x *. exp (-.x)) ~lo:0.0 ~hi:10.0)

let test_brent_max_value () =
  let p = Optimize.brent_max (fun x -> x *. exp (-.x)) ~lo:0.0 ~hi:10.0 in
  Alcotest.(check (float 1e-9)) "max value" (exp (-1.0)) p.Optimize.fx

let test_grid_max_multimodal () =
  (* sin has local maxima; grid at 100 steps pins the global on [0, 10]:
     both peaks equal 1.0, the first is at pi/2. *)
  let p = Optimize.grid_max sin ~lo:0.0 ~hi:10.0 ~steps:1000 in
  Alcotest.(check (float 1e-3)) "value 1" 1.0 p.Optimize.fx

let test_grid_then_refine_multimodal () =
  (* f has a spurious local max near 0.8 and global near 3.0. *)
  let f x = (2.0 *. exp (-.((x -. 3.0) ** 2.0))) +. exp (-.(((x -. 0.8) /. 0.2) ** 2.0)) in
  let p = Optimize.grid_then_refine f ~lo:0.0 ~hi:5.0 ~steps:64 in
  check_x ~eps:1e-4 3.0 p

let test_grid_max_validation () =
  Alcotest.check_raises "steps >= 1"
    (Invalid_argument "Optimize.grid_max: steps must be >= 1") (fun () ->
      ignore (Optimize.grid_max sin ~lo:0.0 ~hi:1.0 ~steps:0))

let test_coordinate_ascent_quadratic () =
  (* max of -(x-1)^2 - (y-2)^2 - (z+1)^2 *)
  let f v =
    -.((v.(0) -. 1.0) ** 2.0)
    -. ((v.(1) -. 2.0) ** 2.0)
    -. ((v.(2) +. 1.0) ** 2.0)
  in
  let xs, fx =
    Optimize.coordinate_ascent ~f ~lower:[| -5.0; -5.0; -5.0 |]
      ~upper:[| 5.0; 5.0; 5.0 |] [| 0.0; 0.0; 0.0 |]
  in
  Alcotest.(check (float 1e-4)) "x" 1.0 xs.(0);
  Alcotest.(check (float 1e-4)) "y" 2.0 xs.(1);
  Alcotest.(check (float 1e-4)) "z" (-1.0) xs.(2);
  Alcotest.(check (float 1e-6)) "value" 0.0 fx

let test_coordinate_ascent_coupled () =
  (* Coupled objective: -(x+y-3)^2 - (x-y-1)^2, max at x=2, y=1. *)
  let f v =
    -.((v.(0) +. v.(1) -. 3.0) ** 2.0) -. ((v.(0) -. v.(1) -. 1.0) ** 2.0)
  in
  let xs, _ =
    Optimize.coordinate_ascent ~f ~lower:[| -10.0; -10.0 |]
      ~upper:[| 10.0; 10.0 |] [| 0.0; 0.0 |]
  in
  Alcotest.(check (float 1e-3)) "x" 2.0 xs.(0);
  Alcotest.(check (float 1e-3)) "y" 1.0 xs.(1)

let test_coordinate_ascent_respects_box () =
  let f v = v.(0) in
  let xs, _ =
    Optimize.coordinate_ascent ~f ~lower:[| 0.0 |] ~upper:[| 2.0 |] [| 1.0 |]
  in
  Alcotest.(check (float 1e-6)) "clamped to upper" 2.0 xs.(0)

let test_coordinate_ascent_dim_mismatch () =
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Optimize.coordinate_ascent: dimension mismatch")
    (fun () ->
      ignore
        (Optimize.coordinate_ascent
           ~f:(fun _ -> 0.0)
           ~lower:[| 0.0 |] ~upper:[| 1.0; 2.0 |] [| 0.5; 0.5 |]))

let test_unbounded_right () =
  (* max of t * exp(-t/20) at t = 20, well beyond the initial width. *)
  let p =
    Optimize.maximize_unbounded_right
      (fun t -> t *. exp (-.t /. 20.0))
      ~lo:0.0 ~init_width:1.0
  in
  Alcotest.(check (float 1e-3)) "argmax 20" 20.0 p.Optimize.x

let prop_brent_max_finds_parabola_vertex =
  QCheck.Test.make ~name:"brent_max finds random parabola vertices" ~count:200
    QCheck.(float_range 0.5 9.5)
    (fun v ->
      let p = Optimize.brent_max (fun x -> -.((x -. v) ** 2.0)) ~lo:0.0 ~hi:10.0 in
      Float.abs (p.Optimize.x -. v) < 1e-5)

let () =
  Alcotest.run "optimize"
    [
      ( "optimize",
        [
          Alcotest.test_case "golden max parabola" `Quick
            test_golden_max_parabola;
          Alcotest.test_case "golden min parabola" `Quick
            test_golden_min_parabola;
          Alcotest.test_case "golden edge max" `Quick test_golden_edge_maximum;
          Alcotest.test_case "brent max smooth" `Quick test_brent_max_smooth;
          Alcotest.test_case "brent max value" `Quick test_brent_max_value;
          Alcotest.test_case "grid multimodal" `Quick test_grid_max_multimodal;
          Alcotest.test_case "grid+refine multimodal" `Quick
            test_grid_then_refine_multimodal;
          Alcotest.test_case "grid validation" `Quick test_grid_max_validation;
          Alcotest.test_case "coordinate ascent quadratic" `Quick
            test_coordinate_ascent_quadratic;
          Alcotest.test_case "coordinate ascent coupled" `Quick
            test_coordinate_ascent_coupled;
          Alcotest.test_case "coordinate ascent box" `Quick
            test_coordinate_ascent_respects_box;
          Alcotest.test_case "coordinate ascent dim mismatch" `Quick
            test_coordinate_ascent_dim_mismatch;
          Alcotest.test_case "unbounded right" `Quick test_unbounded_right;
          QCheck_alcotest.to_alcotest prop_brent_max_finds_parabola_vertex;
        ] );
    ]
