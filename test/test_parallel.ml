(* The determinism contract of lib/parallel (DESIGN.md §10): results are
   bit-identical for any domain count. These tests pin both halves —
   Domain_pool's chunk-order reduce discipline in isolation, and the
   instrumented hot paths (Monte_carlo, Optimizer, Guideline.plan_batch)
   run serially vs on a 4-domain pool. All float checks use exact
   equality (Alcotest's [float 0.0]): "close" would mask exactly the
   reduction-order bugs this layer exists to rule out. *)

let exact = Alcotest.(check (float 0.0))
let uniform_lf = Families.uniform ~lifespan:100.0
let schedule = (Guideline.plan uniform_lf ~c:1.0).Guideline.schedule

(* ---- Domain_pool mechanics ---- *)

let test_create_validation () =
  Alcotest.check_raises "domains 0" (Invalid_argument
    "Domain_pool.create: domains must be in [1, 128] (got 0)")
    (fun () -> ignore (Domain_pool.create ~domains:0));
  Domain_pool.with_pool ~domains:3 (fun p ->
      Alcotest.(check int) "domains" 3 (Domain_pool.domains p))

let test_parallel_for_covers_all_chunks () =
  Domain_pool.with_pool ~domains:4 (fun p ->
      let hits = Array.make 1000 0 in
      Domain_pool.parallel_for p ~chunks:1000 (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each chunk exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_map_reduce_order () =
  (* A non-commutative reduce exposes any deviation from chunk-index
     order: build the chunk list and compare to the identity. *)
  Domain_pool.with_pool ~domains:4 (fun p ->
      let r =
        Domain_pool.map_reduce p ~chunks:100 ~map:(fun i -> [ i ])
          ~reduce:(fun acc x -> acc @ x)
          ~init:[]
      in
      Alcotest.(check (list int)) "in chunk order" (List.init 100 Fun.id) r)

let test_pool_reuse () =
  Domain_pool.with_pool ~domains:2 (fun p ->
      let total () =
        Domain_pool.map_reduce p ~chunks:50 ~map:Fun.id ~reduce:( + ) ~init:0
      in
      Alcotest.(check int) "first use" 1225 (total ());
      Alcotest.(check int) "second use" 1225 (total ());
      Alcotest.(check int) "third use" 1225 (total ()))

exception Chunk_failed of int

let test_exception_propagation () =
  Domain_pool.with_pool ~domains:4 (fun p ->
      (* Several chunks raise; the lowest-indexed failure must surface,
         matching what a serial in-order run would hit first. *)
      (try
         Domain_pool.parallel_for p ~chunks:64 (fun i ->
             if i mod 10 = 3 then raise (Chunk_failed i));
         Alcotest.fail "expected Chunk_failed"
       with Chunk_failed i ->
         Alcotest.(check int) "lowest failing chunk" 3 i);
      (* ... and the pool must remain usable afterwards. *)
      let r =
        Domain_pool.map_reduce p ~chunks:10 ~map:Fun.id ~reduce:( + ) ~init:0
      in
      Alcotest.(check int) "pool usable after failure" 45 r)

let test_shutdown () =
  let p = Domain_pool.create ~domains:2 in
  Domain_pool.shutdown p;
  Domain_pool.shutdown p;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Domain_pool.parallel_for: pool is shut down") (fun () ->
      Domain_pool.parallel_for p ~chunks:1 ignore)

let test_run_front_end () =
  let sum chunks f =
    let acc = ref 0 in
    f ~chunks (fun i -> acc := !acc + i);
    !acc
  in
  let serial = sum 100 (fun ~chunks f -> Domain_pool.run ~chunks f) in
  let via_domains =
    sum 100 (fun ~chunks f -> Domain_pool.run ~domains:3 ~chunks f)
  in
  Alcotest.(check int) "inline" 4950 serial;
  Alcotest.(check int) "transient pool" 4950 via_domains

(* ---- utilization accounting ---- *)

let test_utilization_accounting () =
  Domain_pool.with_pool ~domains:3 (fun p ->
      Domain_pool.parallel_for p ~chunks:200 (fun _ -> ());
      Domain_pool.parallel_for p ~chunks:57 (fun _ -> ());
      let stats = Domain_pool.utilization p in
      Alcotest.(check int) "one stat per domain" 3 (Array.length stats);
      let chunks =
        Array.fold_left (fun a d -> a + d.Domain_pool.d_chunks) 0 stats
      in
      (* Conservation: every submitted chunk executed exactly once,
         whichever domain claimed it. *)
      Alcotest.(check int) "chunks conserved" 257 chunks;
      Alcotest.(check int) "runs counted" 2 (Domain_pool.runs p);
      Alcotest.(check int) "no order violations" 0
        (Domain_pool.chunk_order_violations p);
      Array.iteri
        (fun i d ->
          Alcotest.(check int) "stat is its own domain" i
            d.Domain_pool.d_domain;
          let nonneg label v =
            Alcotest.(check bool) (Printf.sprintf "domain %d %s" i label)
              true
              (Float.is_finite v && v >= 0.0)
          in
          nonneg "busy" d.Domain_pool.d_busy_s;
          nonneg "idle" d.Domain_pool.d_idle_s;
          nonneg "wait" d.Domain_pool.d_queue_wait_s)
        stats)

let test_publish_gauges () =
  let m = Obs.Metrics.create () in
  Domain_pool.with_pool ~domains:2 (fun p ->
      Domain_pool.parallel_for p ~chunks:10 (fun _ -> ());
      Domain_pool.note_merge ~pool:p ~seconds:0.25 ();
      Domain_pool.publish p m);
  let snap = Obs.Metrics.snapshot m in
  let g name = List.assoc name snap.Obs.Metrics.snap_gauges in
  exact "pool.domains" 2.0 (g "pool.domains");
  exact "pool.runs" 1.0 (g "pool.runs");
  exact "pool.chunks" 10.0 (g "pool.chunks");
  exact "pool.chunk_order_violations" 0.0 (g "pool.chunk_order_violations");
  exact "pool.merge_seconds" 0.25 (g "pool.merge_seconds");
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " finite and non-negative") true
        (let v = g name in
         Float.is_finite v && v >= 0.0))
    [ "pool.busy_seconds"; "pool.idle_seconds"; "pool.queue_wait_seconds" ]

let test_resource_sampling_jobs_invariant () =
  (* gc.samples counts chunk boundaries plus the final capture: the
     chunk grid is fixed by trials alone (DESIGN.md §10) and the
     sampler ticks in the serial gather loop on the caller, so the
     count cannot depend on the domain count. 2048 trials = 4 chunks. *)
  let samples jobs =
    let m = Obs.Metrics.create () in
    let res = Obs.Resource.create m in
    let go pool =
      ignore
        (Monte_carlo.estimate
           ~obs:(Obs.create ~metrics:m ())
           ?pool ~resource:res ~trials:2048 uniform_lf ~c:1.0 ~schedule
           ~seed:11L)
    in
    (match jobs with
    | 1 -> go None
    | n -> Domain_pool.with_pool ~domains:n (fun p -> go (Some p)));
    ( List.assoc "gc.samples" (Obs.Metrics.snapshot m).Obs.Metrics.snap_counters,
      Obs.Resource.samples res )
  in
  let c1, s1 = samples 1 in
  let c3, s3 = samples 3 in
  Alcotest.(check int) "counter = accessor (serial)" s1 c1;
  Alcotest.(check int) "counter = accessor (pooled)" s3 c3;
  Alcotest.(check int) "chunks + final capture" 5 c1;
  Alcotest.(check int) "jobs-invariant" c1 c3

(* ---- Prng.split_n: the chunk-stream grid ---- *)

let test_split_n () =
  let drain g = Array.init 8 (fun _ -> Prng.next_int64 g) in
  let a = Prng.split_n (Prng.create ~seed:9L) 5 in
  let b = Prng.split_n (Prng.create ~seed:9L) 5 in
  Alcotest.(check int) "count" 5 (Array.length a);
  (* Deterministic: same parent seed, same child streams, index-wise. *)
  Array.iteri
    (fun i gi ->
      Alcotest.(check (array int64))
        (Printf.sprintf "child %d reproducible" i)
        (drain gi) (drain b.(i)))
    a;
  (* A longer grid is a prefix-extension: chunk k's stream must not
     depend on how many chunks follow it (the grid geometry depends on
     the trial count, and trials differing must not re-seed chunk 0). *)
  let long = Prng.split_n (Prng.create ~seed:9L) 9 in
  let short = Prng.split_n (Prng.create ~seed:9L) 5 in
  Alcotest.(check (array int64))
    "prefix stability" (drain short.(0)) (drain long.(0))

(* ---- Monte_carlo: bit-identical across domain counts ---- *)

let check_estimate_equal msg (a : Monte_carlo.estimate)
    (b : Monte_carlo.estimate) =
  let lo_a, hi_a = a.ci95 and lo_b, hi_b = b.ci95 in
  Alcotest.(check int) (msg ^ ": trials") a.trials b.trials;
  exact (msg ^ ": mean_work") a.mean_work b.mean_work;
  exact (msg ^ ": ci95 lo") lo_a lo_b;
  exact (msg ^ ": ci95 hi") hi_a hi_b;
  exact (msg ^ ": mean_overhead") a.mean_overhead b.mean_overhead;
  exact (msg ^ ": mean_lost") a.mean_lost b.mean_lost;
  exact (msg ^ ": interrupted_fraction") a.interrupted_fraction
    b.interrupted_fraction;
  exact (msg ^ ": analytic") a.analytic b.analytic

let test_estimate_bit_identical () =
  (* 2500 trials → 5 chunks: enough to spread over 4 domains while
     staying fast. Also an uneven tail chunk (2500 = 4×512 + 452). *)
  let serial =
    Monte_carlo.estimate ~trials:2500 uniform_lf ~c:1.0 ~schedule ~seed:11L
  in
  let four =
    Monte_carlo.estimate ~domains:4 ~trials:2500 uniform_lf ~c:1.0 ~schedule
      ~seed:11L
  in
  let one =
    Monte_carlo.estimate ~domains:1 ~trials:2500 uniform_lf ~c:1.0 ~schedule
      ~seed:11L
  in
  check_estimate_equal "serial vs 4 domains" serial four;
  check_estimate_equal "serial vs 1 domain" serial one

let test_estimate_pool_reuse () =
  (* One pool, two different estimates: results must match the
     transient-pool runs (pool identity carries no state between calls),
     and the reclaim stream of each call is fully seed-determined. *)
  Domain_pool.with_pool ~domains:4 (fun p ->
      let e1 =
        Monte_carlo.estimate ~pool:p ~trials:1500 uniform_lf ~c:1.0 ~schedule
          ~seed:3L
      in
      let e2 =
        Monte_carlo.estimate ~pool:p ~trials:1500 uniform_lf ~c:2.0 ~schedule
          ~seed:3L
      in
      let e1' =
        Monte_carlo.estimate ~trials:1500 uniform_lf ~c:1.0 ~schedule ~seed:3L
      in
      let e2' =
        Monte_carlo.estimate ~trials:1500 uniform_lf ~c:2.0 ~schedule ~seed:3L
      in
      check_estimate_equal "first call" e1' e1;
      check_estimate_equal "second call" e2' e2)

let test_estimate_validation () =
  Alcotest.check_raises "trials 1"
    (Invalid_argument "Monte_carlo.estimate: trials must be >= 2, got 1")
    (fun () ->
      ignore
        (Monte_carlo.estimate ~trials:1 uniform_lf ~c:1.0 ~schedule ~seed:1L))

let test_compare_policies_bit_identical () =
  let policies =
    [ ("guideline", schedule);
      ("half", (Guideline.plan uniform_lf ~c:0.5).Guideline.schedule) ]
  in
  let run ?domains () =
    Monte_carlo.compare_policies ?domains ~trials:1200 uniform_lf ~c:1.0
      ~policies ~seed:21L
  in
  let serial = run () and four = run ~domains:4 () in
  Alcotest.(check int) "policy count" (List.length serial) (List.length four);
  List.iter2
    (fun (a : Monte_carlo.policy_run) (b : Monte_carlo.policy_run) ->
      Alcotest.(check string) "policy order" a.policy_name b.policy_name;
      Alcotest.(check int) "episodes" a.episodes b.episodes;
      exact "mean work" a.mean_work_per_episode b.mean_work_per_episode)
    serial four;
  (* Best-first ordering. *)
  (match serial with
  | first :: rest ->
      List.iter
        (fun (r : Monte_carlo.policy_run) ->
          Alcotest.(check bool) "sorted best-first" true
            (first.mean_work_per_episode >= r.mean_work_per_episode))
        rest
  | [] -> Alcotest.fail "no policies returned");
  Alcotest.check_raises "empty policies"
    (Invalid_argument
       "Monte_carlo.compare_policies: policies must not be empty")
    (fun () ->
      ignore
        (Monte_carlo.compare_policies ~trials:10 uniform_lf ~c:1.0 ~policies:[]
           ~seed:1L))

(* ---- Optimizer: multi-start + speculative sweep parity ---- *)

let test_optimizer_parallel_parity () =
  let geo_inc = Families.geometric_increasing ~lifespan:30.0 in
  let serial = Optimizer.optimal_schedule ~m_max:5 ~patience:2 geo_inc ~c:1.0 in
  let parallel =
    Domain_pool.with_pool ~domains:4 (fun p ->
        Optimizer.optimal_schedule ~pool:p ~m_max:5 ~patience:2 geo_inc ~c:1.0)
  in
  exact "expected_work" serial.Optimizer.expected_work
    parallel.Optimizer.expected_work;
  Alcotest.(check int) "m" serial.Optimizer.m parallel.Optimizer.m;
  Alcotest.(check int) "sweeps" serial.Optimizer.sweeps
    parallel.Optimizer.sweeps;
  Alcotest.(check (array (float 0.0)))
    "schedule periods"
    (Schedule.periods serial.Optimizer.schedule)
    (Schedule.periods parallel.Optimizer.schedule)

(* ---- Guideline.plan_batch ---- *)

let test_plan_batch_matches_plan () =
  let cs = [ 0.5; 1.0; 2.0; 3.0 ] in
  let scenarios = List.map (fun c -> (uniform_lf, c)) cs in
  let batch =
    Domain_pool.with_pool ~domains:4 (fun p ->
        Guideline.plan_batch ~pool:p scenarios)
  in
  let serial = List.map (fun c -> Guideline.plan uniform_lf ~c) cs in
  Alcotest.(check int) "length" (List.length serial) (List.length batch);
  List.iter2
    (fun (a : Guideline.result) (b : Guideline.result) ->
      exact "t0" a.t0 b.t0;
      exact "expected_work" a.expected_work b.expected_work;
      Alcotest.(check (array (float 0.0)))
        "periods" (Schedule.periods a.schedule) (Schedule.periods b.schedule))
    serial batch;
  Alcotest.(check int) "empty batch" 0 (List.length (Guideline.plan_batch []))

(* ---- Observability merge: serial and parallel runs agree ---- *)

let obs_fingerprint ~domains =
  (* Everything here is simulated-time or count data; wall-clock
     instruments (mc.estimate_seconds, span durations) are exempt from
     the contract and deliberately left out of the fingerprint. *)
  let events = ref [] in
  let metrics = Obs.Metrics.create () in
  let spans = Obs.Span.create () in
  let obs =
    Obs.create
      ~sink:(Obs.Sink.Custom (fun e -> events := e :: !events))
      ~metrics ~spans ()
  in
  ignore
    (Monte_carlo.estimate ~obs ~domains ~trials:1500 uniform_lf ~c:1.0
       ~schedule ~seed:5L);
  let counter n = Obs.Metrics.(count (counter metrics n)) in
  let hist = Obs.Metrics.(histogram metrics "episode.period_length") in
  ( List.rev !events,
    ( counter "episode.runs",
      counter "episode.periods_completed",
      counter "episode.periods_killed" ),
    (Obs.Metrics.n_observations hist, Obs.Metrics.sum hist),
    List.map
      (fun (s : Obs.Span.span) -> (s.name, s.parent, s.depth))
      (Obs.Span.spans spans) )

let test_obs_merge_parity () =
  let ev1, c1, h1, s1 = obs_fingerprint ~domains:1 in
  let ev4, c4, h4, s4 = obs_fingerprint ~domains:4 in
  Alcotest.(check bool) "event streams equal" true (ev1 = ev4);
  Alcotest.(check (triple int int int)) "counters" c1 c4;
  let n1, sum1 = h1 and n4, sum4 = h4 in
  Alcotest.(check int) "period_length count" n1 n4;
  exact "period_length sum" sum1 sum4;
  Alcotest.(check (list (triple string int int)))
    "span topology" s1 s4

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "parallel_for coverage" `Quick
            test_parallel_for_covers_all_chunks;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_order;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
          Alcotest.test_case "run front-end" `Quick test_run_front_end;
        ] );
      ( "utilization",
        [
          Alcotest.test_case "accounting invariants" `Quick
            test_utilization_accounting;
          Alcotest.test_case "published gauges" `Quick test_publish_gauges;
          Alcotest.test_case "resource sampling jobs-invariant" `Quick
            test_resource_sampling_jobs_invariant;
        ] );
      ("prng", [ Alcotest.test_case "split_n grid" `Quick test_split_n ]);
      ( "monte-carlo",
        [
          Alcotest.test_case "estimate bit-identical" `Quick
            test_estimate_bit_identical;
          Alcotest.test_case "estimate pool reuse" `Quick
            test_estimate_pool_reuse;
          Alcotest.test_case "estimate validation" `Quick
            test_estimate_validation;
          Alcotest.test_case "compare_policies bit-identical" `Quick
            test_compare_policies_bit_identical;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "parallel parity" `Quick
            test_optimizer_parallel_parity;
        ] );
      ( "guideline",
        [
          Alcotest.test_case "plan_batch matches plan" `Quick
            test_plan_batch_matches_plan;
        ] );
      ( "obs",
        [ Alcotest.test_case "merge parity" `Quick test_obs_merge_parity ] );
    ]
