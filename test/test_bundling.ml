let c = 1.0
let lf = Families.uniform ~lifespan:100.0

let mk durations =
  List.mapi (fun i d -> Task.make ~task_id:i ~duration:d ()) durations

let test_pack_first_fit () =
  let s = Schedule.of_list [ 6.0; 4.0 ] in
  (* budgets 5 and 3; tasks 3,3,2: first period takes [3], second... wait
     first-fit in order: 3 fits (used 3), next 3 does not (6 > 5), so
     period 0 = [3]; period 1 budget 3 takes the waiting 3; 2 is left over. *)
  let b = Bundling.pack lf ~c s (mk [ 3.0; 3.0; 2.0 ]) in
  (match b.Bundling.bundles with
  | [ b0; b1 ] ->
      Alcotest.(check int) "period 0" 0 b0.Bundling.period_index;
      Alcotest.(check (float 0.0)) "work 0" 3.0 b0.Bundling.work;
      Alcotest.(check int) "period 1" 1 b1.Bundling.period_index;
      Alcotest.(check (float 0.0)) "work 1" 3.0 b1.Bundling.work
  | _ -> Alcotest.fail "expected two bundles");
  Alcotest.(check int) "one leftover" 1 (List.length b.Bundling.leftover)

let test_pack_multiple_per_period () =
  let s = Schedule.of_list [ 10.0 ] in
  let b = Bundling.pack lf ~c s (mk [ 4.0; 4.0; 4.0 ]) in
  match b.Bundling.bundles with
  | [ b0 ] ->
      Alcotest.(check int) "two tasks fit in budget 9" 2
        (List.length b0.Bundling.tasks);
      Alcotest.(check (float 1e-12)) "realized period" 9.0
        (Schedule.period b.Bundling.realized 0)
  | _ -> Alcotest.fail "expected one bundle"

let test_pack_drops_empty_periods () =
  let s = Schedule.of_list [ 2.0; 12.0 ] in
  (* budget 1 then 11: the 5-long task skips period 0 entirely. *)
  let b = Bundling.pack lf ~c s (mk [ 5.0 ]) in
  match b.Bundling.bundles with
  | [ b0 ] -> Alcotest.(check int) "skipped to period 1" 1 b0.Bundling.period_index
  | _ -> Alcotest.fail "expected one bundle"

let test_pack_nothing_fits () =
  let s = Schedule.of_list [ 3.0 ] in
  let b = Bundling.pack lf ~c s (mk [ 50.0 ]) in
  Alcotest.(check int) "no bundles" 0 (List.length b.Bundling.bundles);
  Alcotest.(check int) "all leftover" 1 (List.length b.Bundling.leftover);
  Alcotest.(check (float 1e-12)) "banks nothing" 0.0 b.Bundling.expected_work

let test_pack_validation () =
  let s = Schedule.of_list [ 3.0 ] in
  (match Bundling.pack lf ~c s [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty tasks accepted");
  match Bundling.pack lf ~c:(-1.0) s (mk [ 1.0 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative c accepted"

let test_fine_tasks_high_efficiency () =
  let g = Guideline.plan lf ~c in
  let tasks = Task.uniform_batch ~n:2000 ~duration:0.05 () in
  let b = Bundling.pack lf ~c g.Guideline.schedule tasks in
  Alcotest.(check bool)
    (Printf.sprintf "efficiency %.3f high" (Bundling.efficiency b))
    true
    (Bundling.efficiency b > 0.97)

let test_heterogeneous_pack_consistency () =
  let g = Guideline.plan lf ~c in
  let rng = Prng.create ~seed:3L in
  let tasks = Task.jittered_batch ~n:60 ~mean:2.0 ~jitter:0.5 rng () in
  let b = Bundling.pack lf ~c g.Guideline.schedule tasks in
  (* conservation of tasks *)
  let packed =
    List.fold_left (fun a bd -> a + List.length bd.Bundling.tasks) 0
      b.Bundling.bundles
  in
  Alcotest.(check int) "packed + leftover = total" 60
    (packed + List.length b.Bundling.leftover);
  (* realized periods never exceed source periods *)
  let src = Schedule.periods g.Guideline.schedule in
  List.iter
    (fun bd ->
      Alcotest.(check bool) "realized within source" true
        (c +. bd.Bundling.work <= src.(bd.Bundling.period_index) +. 1e-9))
    b.Bundling.bundles

let prop_realized_E_bounded_by_capacity =
  QCheck.Test.make
    ~name:"packed expected work <= realized capacity <= task total" ~count:200
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 8) (float_range 2.0 15.0))
        (list_of_size Gen.(int_range 1 30) (float_range 0.2 6.0)))
    (fun (periods, durations) ->
      let s = Schedule.of_periods periods in
      let tasks = mk durations in
      let b = Bundling.pack lf ~c s tasks in
      let cap = Schedule.work_capacity ~c b.Bundling.realized in
      b.Bundling.expected_work <= cap +. 1e-9
      && cap <= Task.total_duration tasks +. 1e-9)

let prop_efficiency_improves_with_smaller_tasks =
  QCheck.Test.make ~name:"halving task grain does not hurt efficiency much"
    ~count:20
    QCheck.(float_range 0.5 4.0)
    (fun grain ->
      let g = Guideline.plan lf ~c in
      let eff grain =
        let n = int_of_float (200.0 /. grain) in
        Bundling.efficiency
          (Bundling.pack lf ~c g.Guideline.schedule
             (Task.uniform_batch ~n ~duration:grain ()))
      in
      eff (grain /. 2.0) >= eff grain -. 0.02)

let () =
  Alcotest.run "bundling"
    [
      ( "bundling",
        [
          Alcotest.test_case "first fit" `Quick test_pack_first_fit;
          Alcotest.test_case "multiple per period" `Quick
            test_pack_multiple_per_period;
          Alcotest.test_case "drops empty periods" `Quick
            test_pack_drops_empty_periods;
          Alcotest.test_case "nothing fits" `Quick test_pack_nothing_fits;
          Alcotest.test_case "validation" `Quick test_pack_validation;
          Alcotest.test_case "fine tasks efficient" `Quick
            test_fine_tasks_high_efficiency;
          Alcotest.test_case "heterogeneous consistency" `Quick
            test_heterogeneous_pack_consistency;
          QCheck_alcotest.to_alcotest prop_realized_E_bounded_by_capacity;
          QCheck_alcotest.to_alcotest
            prop_efficiency_improves_with_smaller_tasks;
        ] );
    ]
